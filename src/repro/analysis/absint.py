"""Known-bits + interval abstract interpretation over the IR.

The static tier of the reachability flow (DESIGN.md §10): a sound
over-approximation of every signal's reachable values, cheap enough to run
on every design, precise enough to discharge the easy facts — constant
cover predicates, untoggleable bits, tied-off instance inputs — so the
expensive formal backend (:mod:`repro.backends.formal.bmc`) only sees the
residue.

The abstract domain is the *reduced product* of three classic lattices
over raw bit patterns (the same value representation :mod:`repro.ir.ops`
uses):

* **known bits** — ``(known, value)`` masks: bit ``i`` is proven to equal
  ``(value >> i) & 1`` whenever ``(known >> i) & 1``;
* **intervals** — ``[lo, hi]`` bounds on the raw unsigned pattern;
* **small value sets** — the exact set of admitted patterns while it stays
  under :data:`VSET_MAX` elements, ``None`` once it overflows.

The value-set component is what makes FSM state registers precise: a
one-hot-ish encoding like ``{0, 1, 2, 5}`` excludes the dead write states
``3``/``4`` even though every bit varies (no known bits) and the hull
``[0, 5]`` contains them (no interval).  Transfer functions evaluate small
sets *exactly* through :func:`repro.ir.ops.eval_op`, so
``eq(state, 3)`` over that set is a proven constant zero.

Reduction happens in :func:`make`: known bits tighten the interval
(any concrete ``x`` satisfies ``value <= x <= value | ~known``), the
interval and known bits filter the value set, the value set re-tightens
both, and a singleton promotes to fully-known.  Signed operators fall
back to exact evaluation when every operand is constant and to ⊤
otherwise — soundness over precision; the cross-validation property tests
drive both directions against :func:`repro.ir.ops.eval_op`.

Fixpoint: registers start at the backends' initial value (zero) joined
with their reset ``init``; each iteration re-evaluates the combinational
cone and widens.  Widening keeps known-bit joins exact (finite height)
and snaps growing intervals to their known-bits bounds, so convergence is
fast even for free-running counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir import ops
from ..ir.nodes import (
    Connect,
    Cover,
    DefNode,
    DefRegister,
    Expr,
    InstPort,
    MemRead,
    Module,
    Mux,
    PrimOp,
    Ref,
    SIntLiteral,
    UIntLiteral,
)
from ..ir.types import ClockType, bit_width, is_signed, mask
from .dataflow import ModuleDataflow, build_module_dataflow

#: iterations before interval widening kicks in
WIDEN_AFTER = 4
#: hard fixpoint cap: past this every still-changing register snaps to top
MAX_ITERATIONS = 48
#: value-set component overflows to ``None`` beyond this many elements
VSET_MAX = 16
#: largest operand-set cross product the transfer functions evaluate exactly
VSET_COMBOS = 256


@dataclass(frozen=True)
class AbsVal:
    """One abstract value: known bits, an unsigned interval, and (while it
    stays small) the exact set of admitted raw patterns."""

    width: int
    known: int  # mask of bits whose value is proven
    value: int  # the proven bits (subset of ``known``)
    lo: int     # inclusive lower bound on the raw pattern
    hi: int     # inclusive upper bound on the raw pattern
    vset: Optional[frozenset] = None  # exact admitted patterns, or None

    @property
    def is_const(self) -> bool:
        return self.known == mask(self.width) or self.lo == self.hi

    @property
    def const_value(self) -> int:
        if not self.is_const:
            raise ValueError("not a constant")
        return self.lo if self.lo == self.hi else self.value

    def contains(self, raw: int) -> bool:
        """Soundness predicate: does this abstraction admit ``raw``?"""
        raw &= mask(self.width)
        if raw & self.known != self.value:
            return False
        if self.vset is not None and raw not in self.vset:
            return False
        return self.lo <= raw <= self.hi

    def __str__(self) -> str:
        if self.is_const:
            return f"const({self.const_value}, w{self.width})"
        bits = "".join(
            (str((self.value >> i) & 1) if (self.known >> i) & 1 else "x")
            for i in reversed(range(self.width))
        )
        if self.vset is not None:
            return f"{bits}{{{','.join(str(v) for v in sorted(self.vset))}}}"
        return f"{bits}[{self.lo},{self.hi}]"


def make(width: int, known: int, value: int, lo: int, hi: int,
         vset: Optional[frozenset] = None) -> AbsVal:
    """Normalize: clamp, reduce the three components, promote constants."""
    m = mask(width)
    known &= m
    value &= known
    lo = max(0, min(lo, m))
    hi = max(0, min(hi, m))
    # reduction: known bits bound the interval from both sides
    lo = max(lo, value)
    hi = min(hi, value | (~known & m))
    if lo > hi:
        # over-tightened (caller bounds conflict); keep the known-bits box
        lo, hi = value, value | (~known & m)
    if vset is not None and len(vset) > VSET_MAX:
        vset = None
    if vset is not None:
        # reduce both ways: the box filters the set, the set tightens the box
        filtered = frozenset(
            v & m for v in vset
            if lo <= (v & m) <= hi and (v & m) & known == value
        )
        if filtered:
            vset = filtered
            lo = max(lo, min(filtered))
            hi = min(hi, max(filtered))
            first = next(iter(filtered))
            disagree = 0
            for v in filtered:
                disagree |= v ^ first
            agree = m & ~disagree
            known |= agree
            value = first & agree | value
        else:
            # the caller's components contradict; trust the box, drop the set
            vset = None
    if lo == hi:
        return AbsVal(width, m, lo, lo, lo, frozenset((lo,)))
    return AbsVal(width, known, value, lo, hi, vset)


def const(raw: int, width: int) -> AbsVal:
    raw &= mask(width)
    return AbsVal(width, mask(width), raw, raw, raw, frozenset((raw,)))


def top(width: int) -> AbsVal:
    return AbsVal(width, 0, 0, 0, mask(width))


def _vset_union(a: AbsVal, b: AbsVal) -> Optional[frozenset]:
    if a.vset is None or b.vset is None:
        return None
    union = a.vset | b.vset
    return union if len(union) <= VSET_MAX else None


def join(a: AbsVal, b: AbsVal) -> AbsVal:
    """Least upper bound (union of admitted values)."""
    assert a.width == b.width
    known = a.known & b.known & ~(a.value ^ b.value)
    return make(a.width, known, a.value & known, min(a.lo, b.lo), max(a.hi, b.hi),
                _vset_union(a, b))


def widen(old: AbsVal, new: AbsVal) -> AbsVal:
    """Join, but growing interval bounds jump straight to the known-bits box.

    The value-set component joins exactly: its chain height is bounded by
    :data:`VSET_MAX` (then ``None``), so it cannot stall convergence.
    """
    joined = join(old, new)
    lo = joined.lo if joined.lo >= old.lo else 0
    hi = joined.hi if joined.hi <= old.hi else mask(joined.width)
    return make(joined.width, joined.known, joined.value, lo, hi, joined.vset)


def _extend(av: AbsVal, signed: bool, width: int) -> AbsVal:
    """Zero/sign extend a raw pattern abstraction to ``width`` bits."""
    if width <= av.width:
        return av
    m = mask(width)
    vset = av.vset
    if signed and vset is not None:
        sign_bit = 1 << (av.width - 1)
        high = m & ~mask(av.width)
        vset = frozenset((v | high) if v & sign_bit else v for v in vset)
    if not signed:
        high_known = m & ~mask(av.width)
        return make(width, av.known | high_known, av.value, av.lo, av.hi, vset)
    sign_bit = 1 << (av.width - 1)
    if av.known & sign_bit:
        high = m & ~mask(av.width)
        if av.value & sign_bit:
            ext_value = av.value | high
            return make(width, av.known | high, ext_value,
                        av.lo | high, av.hi | high, vset)
        return make(width, av.known | high, av.value, av.lo, av.hi, vset)
    return make(width, av.known & mask(av.width - 1), av.value, 0, m, vset)


def _trailing_known(a: AbsVal, b: AbsVal) -> int:
    """Number of low-order bit positions known in *both* operands."""
    both = a.known & b.known
    count = 0
    while (both >> count) & 1:
        count += 1
    return count


def _bitlen_hi(a: AbsVal, b: AbsVal) -> int:
    return max(a.hi.bit_length(), b.hi.bit_length())


def _vset_image(expr: PrimOp, args: list[AbsVal],
                arg_types: list) -> Optional[frozenset]:
    """Exact image of small operand sets through :func:`ops.eval_op`."""
    combos = 1
    for a in args:
        if a.vset is None:
            return None
        combos *= len(a.vset)
        if combos > VSET_COMBOS:
            return None
    sets = [sorted(a.vset) for a in args]
    picks = [[v] for v in sets[0]]
    for s in sets[1:]:
        picks = [p + [v] for p in picks for v in s]
    image = set()
    for combo in picks:
        image.add(ops.eval_op(expr.op, combo, arg_types, expr.consts))
        if len(image) > VSET_MAX:
            return None
    return frozenset(image)


def eval_primop(expr: PrimOp, args: list[AbsVal]) -> AbsVal:
    """Abstract transfer function for one primitive operation.

    Runs the per-operator box transfer, then intersects with the exact
    value-set image when every operand set is small (the reduced product's
    third component).
    """
    arg_types = [a.tpe for a in expr.args]
    box = _transfer(expr, args, arg_types)
    if box.is_const:
        return box
    image = _vset_image(expr, args, arg_types)
    if image is None:
        return box
    return make(box.width, box.known, box.value, box.lo, box.hi, image)


def _transfer(expr: PrimOp, args: list[AbsVal], arg_types: list) -> AbsVal:
    op = expr.op
    width = bit_width(expr.type)
    signed_args = [is_signed(t) for t in arg_types]

    # exact evaluation when every operand is a constant
    if all(a.is_const for a in args):
        raw = ops.eval_op(op, [a.const_value for a in args], arg_types, expr.consts)
        return const(raw, width)

    unsigned = not any(signed_args)

    if op in ("add", "sub"):
        a, b = args
        t = _trailing_known(a, b)
        raw = (a.value + b.value) if op == "add" else (a.value - b.value)
        known, value = mask(t), raw & mask(t)
        if unsigned and op == "add":
            return make(width, known, value, a.lo + b.lo, a.hi + b.hi)
        return make(width, known, value, 0, mask(width))
    if op == "mul":
        a, b = args
        t = _trailing_known(a, b)
        known, value = mask(t), (a.value * b.value) & mask(t)
        if unsigned:
            return make(width, known, value, a.lo * b.lo, a.hi * b.hi)
        return make(width, known, value, 0, mask(width))
    if op == "div" and unsigned:
        a, b = args
        if b.lo >= 1:
            return make(width, 0, 0, a.lo // b.hi, a.hi // b.lo)
        return make(width, 0, 0, 0, a.hi)  # b may be 0: x/0 == 0
    if op == "rem" and unsigned:
        a, b = args
        hi = min(a.hi, b.hi - 1) if b.lo >= 1 else a.hi  # x%0 == x
        return make(width, 0, 0, 0, hi)
    if op in ("lt", "leq", "gt", "geq") and unsigned:
        a, b = args
        if op in ("gt", "geq"):
            a, b = b, a
            op = {"gt": "lt", "geq": "leq"}[op]
        if (a.hi < b.lo) if op == "lt" else (a.hi <= b.lo):
            return const(1, 1)
        if (a.lo >= b.hi) if op == "lt" else (a.lo > b.hi):
            return const(0, 1)
        return top(1)
    if op in ("eq", "neq"):
        a, b = args
        common = max(a.width, b.width)
        ax = _extend(a, signed_args[0], common)
        bx = _extend(b, signed_args[1], common)
        conflict = ax.known & bx.known & (ax.value ^ bx.value)
        disjoint = ax.hi < bx.lo or bx.hi < ax.lo
        if conflict or disjoint:
            return const(0 if op == "eq" else 1, 1)
        return top(1)
    if op in ("and", "or", "xor"):
        a = _extend(args[0], signed_args[0], width)
        b = _extend(args[1], signed_args[1], width)
        if op == "and":
            known = (a.known & b.known) | (a.known & ~a.value) | (b.known & ~b.value)
            value = a.value & b.value
            return make(width, known, value & known, 0, min(a.hi, b.hi))
        if op == "or":
            known = (a.known & b.known) | (a.known & a.value) | (b.known & b.value)
            value = (a.value | b.value) & known
            hi = mask(max(a.hi.bit_length(), b.hi.bit_length()))
            return make(width, known, value, max(a.lo, b.lo), hi)
        known = a.known & b.known
        hi = mask(_bitlen_hi(a, b))
        return make(width, known, (a.value ^ b.value) & known, 0, hi)
    if op == "not":
        (a,) = args
        a = _extend(a, signed_args[0], width)
        m = mask(width)
        return make(width, a.known, ~a.value & a.known, m - a.hi, m - a.lo)
    if op in ("andr", "orr", "xorr"):
        (a,) = args
        if op == "orr":
            if a.value != 0 or a.lo >= 1:
                return const(1, 1)
            if a.hi == 0:
                return const(0, 1)
        elif op == "andr":
            if a.known & ~a.value & mask(a.width):
                return const(0, 1)
            if a.lo == mask(a.width):
                return const(1, 1)
        return top(1)
    if op == "cat":
        a, b = args
        wb = b.width
        return make(
            width,
            (a.known << wb) | b.known,
            (a.value << wb) | b.value,
            (a.lo << wb) | b.lo,
            (a.hi << wb) | b.hi,
        )
    if op == "bits":
        hi_c, lo_c = expr.consts
        (a,) = args
        known = (a.known >> lo_c) & mask(width)
        value = (a.value >> lo_c) & mask(width)
        if lo_c == 0 and a.hi <= mask(width):
            return make(width, known, value, a.lo, a.hi)
        return make(width, known, value, 0, mask(width))
    if op == "head":
        (n,) = expr.consts
        (a,) = args
        shift = a.width - n
        return make(width, (a.known >> shift) & mask(n), (a.value >> shift) & mask(n),
                    a.lo >> shift, a.hi >> shift)
    if op == "tail":
        (n,) = expr.consts
        (a,) = args
        known = a.known & mask(width)
        value = a.value & mask(width)
        if a.hi <= mask(width):
            return make(width, known, value, a.lo, a.hi)
        return make(width, known, value, 0, mask(width))
    if op == "shl":
        (n,) = expr.consts
        (a,) = args
        return make(width, (a.known << n) | mask(n), a.value << n, a.lo << n, a.hi << n)
    if op == "shr" and unsigned:
        (n,) = expr.consts
        (a,) = args
        return make(width, a.known >> n, a.value >> n, a.lo >> n, a.hi >> n)
    if op == "dshl" and unsigned:
        a, b = args
        if b.is_const:
            s = b.const_value
            return make(width, (a.known << s) | mask(s), a.value << s, a.lo << s, a.hi << s)
        return make(width, 0, 0, 0 if a.lo == 0 else a.lo, a.hi << mask(b.width))
    if op == "dshr" and unsigned:
        a, b = args
        if b.is_const:
            s = b.const_value
            return make(width, a.known >> s, a.value >> s, a.lo >> s, a.hi >> s)
        return make(width, 0, 0, 0, a.hi)
    if op == "pad":
        (a,) = args
        return _extend(a, signed_args[0], width)
    if op in ("asUInt", "asSInt"):
        (a,) = args
        if width == a.width:
            return AbsVal(width, a.known, a.value, a.lo, a.hi, a.vset)
        return make(width, a.known, a.value, a.lo, a.hi, a.vset)
    return top(width)


class ModuleAbstract:
    """Abstract interpretation of one module (low form, no ``When`` blocks).

    After :meth:`run`, :attr:`env` maps every signal to an over-
    approximation of its value at *any* reachable cycle.  Instance ports
    and memory reads are ⊤ — run after ``InlineInstances`` for whole-
    design precision (the reachability flow does).
    """

    def __init__(
        self,
        module: Module,
        dataflow: Optional[ModuleDataflow] = None,
        assume: Optional[dict[str, AbsVal]] = None,
    ) -> None:
        self.module = module
        self.df = dataflow if dataflow is not None else build_module_dataflow(module)
        self.assume = dict(assume or {})
        self.env: dict[str, AbsVal] = {}
        self._regs: dict[str, DefRegister] = {
            name: stmt
            for name, stmt in self.df.decls.items()
            if isinstance(stmt, DefRegister)
        }
        self._widths: dict[str, int] = {}
        for name, decl in self.df.decls.items():
            tpe = getattr(decl, "type", None)
            if tpe is None and isinstance(decl, DefNode):
                tpe = decl.value.tpe
            if tpe is not None and not isinstance(tpe, ClockType):
                try:
                    self._widths[name] = bit_width(tpe)
                except TypeError:
                    pass
        self._run()

    # -- expression evaluation ----------------------------------------------

    def _eval(self, expr: Expr, env: dict[str, AbsVal], memo: dict[int, AbsVal],
              visiting: set[str]) -> AbsVal:
        key = id(expr)
        cached = memo.get(key)
        if cached is not None:
            return cached
        result = self._eval_inner(expr, env, memo, visiting)
        memo[key] = result
        return result

    def _eval_inner(self, expr: Expr, env, memo, visiting) -> AbsVal:
        if isinstance(expr, UIntLiteral):
            return const(expr.value, expr.width)
        if isinstance(expr, SIntLiteral):
            return const(expr.value & mask(expr.width), expr.width)
        if isinstance(expr, Ref):
            if isinstance(expr.type, ClockType):
                return top(1)
            return self._name_value(expr.name, env, memo, visiting)
        if isinstance(expr, InstPort):
            return top(bit_width(expr.type)) if not isinstance(expr.type, ClockType) else top(1)
        if isinstance(expr, MemRead):
            self._eval(expr.addr, env, memo, visiting)
            return top(bit_width(expr.type))
        if isinstance(expr, Mux):
            cond = self._eval(expr.cond, env, memo, visiting)
            width = bit_width(expr.type)
            signed = is_signed(expr.type)
            tval = _extend(self._eval(expr.tval, env, memo, visiting),
                           is_signed(expr.tval.tpe), width)
            fval = _extend(self._eval(expr.fval, env, memo, visiting),
                           is_signed(expr.fval.tpe), width)
            if cond.is_const:
                return tval if cond.const_value else fval
            return join(tval, fval)
        if isinstance(expr, PrimOp):
            args = [self._eval(a, env, memo, visiting) for a in expr.args]
            return eval_primop(expr, args)
        return top(1)

    def _name_value(self, name: str, env, memo, visiting) -> AbsVal:
        if name in env:
            return env[name]
        width = self._widths.get(name, 1)
        if name in visiting:  # combinational cycle: reported by the loop lint
            return top(width)
        drivers = [
            s for s in self.df.drivers.get(name, [])
            if isinstance(s, (DefNode, Connect))
        ]
        if not drivers:
            env[name] = top(width)
            return env[name]
        visiting.add(name)
        result: Optional[AbsVal] = None
        for stmt in drivers:
            expr = stmt.value if isinstance(stmt, DefNode) else stmt.expr
            value = _extend(
                self._eval(expr, env, memo, visiting),
                is_signed(expr.tpe), width,
            )
            result = value if result is None else join(result, value)
        visiting.discard(name)
        env[name] = result if result is not None else top(width)
        return env[name]

    # -- fixpoint ------------------------------------------------------------

    def _initial_reg(self, reg: DefRegister, env, memo) -> AbsVal:
        width = bit_width(reg.type)
        start = const(0, width)  # backends zero-initialize state
        if reg.init is not None:
            init = _extend(self._eval(reg.init, env, memo, set()),
                           is_signed(reg.init.tpe), width)
            start = join(start, init)
        return start

    def _run(self) -> None:
        regs = self._regs
        inputs = {
            p.name: self.assume.get(p.name, top(bit_width(p.type)))
            for p in self.module.ports
            if p.direction == "input" and not isinstance(p.type, ClockType)
        }
        reg_vals: dict[str, AbsVal] = {}
        env: dict[str, AbsVal] = dict(inputs)
        memo: dict[int, AbsVal] = {}
        for name, reg in regs.items():
            reg_vals[name] = self._initial_reg(reg, env, memo)

        for iteration in range(MAX_ITERATIONS):
            env = dict(inputs)
            env.update(reg_vals)
            memo = {}
            visiting: set[str] = set()
            # evaluate every named value (lazily memoized through env)
            for name in self._widths:
                self._name_value(name, env, memo, visiting)
            changed = False
            combine = join if iteration < WIDEN_AFTER else widen
            for name, reg in regs.items():
                width = bit_width(reg.type)
                nexts = [
                    s.expr for s in self.df.drivers.get(name, [])
                    if isinstance(s, Connect)
                ]
                if not nexts:
                    new = reg_vals[name]  # never driven: holds its init
                else:
                    new = None
                    for expr in nexts:
                        v = _extend(self._eval(expr, env, memo, visiting),
                                    is_signed(expr.tpe), width)
                        new = v if new is None else join(new, v)
                if reg.init is not None:
                    init = _extend(self._eval(reg.init, env, memo, visiting),
                                   is_signed(reg.init.tpe), width)
                    new = join(new, init)
                updated = combine(reg_vals[name], new)
                if updated != reg_vals[name]:
                    reg_vals[name] = updated
                    changed = True
            if not changed:
                break
        else:
            # did not converge: snap all registers to top and settle once
            reg_vals = {name: top(bit_width(reg.type)) for name, reg in regs.items()}
            env = dict(inputs)
            env.update(reg_vals)
            memo = {}
            for name in self._widths:
                self._name_value(name, env, memo, set())

        # final environment over the fixpoint
        final_env: dict[str, AbsVal] = dict(inputs)
        final_env.update(reg_vals)
        self._memo: dict[int, AbsVal] = {}
        for name in self._widths:
            self._name_value(name, final_env, self._memo, set())
        self.env = final_env

    # -- queries -------------------------------------------------------------

    def eval(self, expr: Expr) -> AbsVal:
        """Abstract value of ``expr`` over the converged environment."""
        return self._eval(expr, self.env, self._memo, set())

    def value_of(self, name: str) -> AbsVal:
        return self._name_value(name, self.env, self._memo, set())

    def constant_bits(self, name: str) -> int:
        """Mask of bits of ``name`` proven constant at every reachable cycle."""
        return self.value_of(name).known

    def classify_cover(self, cover: Cover) -> str:
        """``always-false`` / ``always-true`` / ``unknown`` for one cover."""
        pred = self.eval(cover.pred)
        en = self.eval(cover.en)
        if pred.hi == 0 or en.hi == 0:
            return "always-false"
        if pred.lo >= 1 and en.lo >= 1:
            return "always-true"
        return "unknown"


def classify_covers(module: Module,
                    dataflow: Optional[ModuleDataflow] = None,
                    assume: Optional[dict[str, AbsVal]] = None) -> dict[str, str]:
    """Classification for every cover statement in ``module`` by name."""
    from ..ir.traversal import walk_stmts

    abstract = ModuleAbstract(module, dataflow, assume)
    return {
        stmt.name: abstract.classify_cover(stmt)
        for stmt in walk_stmts(module.body)
        if isinstance(stmt, Cover)
    }
