"""Shared dataflow substrate for the analysis framework.

Two graphs, computed once per module and cached on the
:class:`~repro.passes.base.CompileState` metadata table so every rule (and
the abstract interpreter) shares one build:

* the **def-use graph** — who declares, drives, and reads each name — and
* the **combinational dependency graph** — ``name -> names it depends on
  in the same cycle``.  Registers and memory *contents* break edges
  (sequential elements); memory read *addresses*, mux/``When`` predicates,
  and instance port couplings do not.

Instance boundaries are handled by modelling each instance port as a
pseudo-node ``inst.port`` and wiring child output ports to the child's
combinationally-coupled input ports (the per-module *port coupling*
summary, computed child-first over the hierarchy).  A cycle whose path
crosses such a pseudo-node is a cross-module combinational loop — the
same detector covers flattened circuits, where the loop collapses into
one module.

Works on both high form (``When`` blocks contribute their predicates to
every connect they dominate) and low form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from ..ir.nodes import (
    Circuit,
    Connect,
    Cover,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    InstPort,
    MemRead,
    MemWrite,
    Module,
    Port,
    Stmt,
    Stop,
    When,
)
from ..ir.traversal import walk_expr
from ..ir.types import ClockType
from ..passes.base import CompileState

#: CompileState.metadata key under which dataflow results are cached.
CACHE_KEY = "analysis:dataflow"


def comb_reads(expr: Expr) -> Iterator[str]:
    """Names ``expr`` reads *combinationally*.

    Like :func:`repro.ir.traversal.references` but: memory names are
    excluded (contents are sequential; the address subtree still counts),
    clock references are excluded, and instance ports yield their
    ``inst.port`` pseudo-node name.
    """
    from ..ir.nodes import Ref

    for e in walk_expr(expr):
        if isinstance(e, Ref):
            if not isinstance(e.type, ClockType):
                yield e.name
        elif isinstance(e, InstPort):
            yield f"{e.instance}.{e.port}"
        elif isinstance(e, MemRead):
            pass  # addr subtree is walked by walk_expr; mem name excluded


def data_reads(expr: Expr) -> Iterator[str]:
    """All names ``expr`` reads, including memories and clocks.

    Instance ports yield both the pseudo-node and the instance name, so
    def-use queries see the instance as used.
    """
    from ..ir.nodes import Ref

    for e in walk_expr(expr):
        if isinstance(e, Ref):
            yield e.name
        elif isinstance(e, InstPort):
            yield f"{e.instance}.{e.port}"
            yield e.instance
        elif isinstance(e, MemRead):
            yield e.mem


@dataclass
class ModuleDataflow:
    """Def-use and combinational dependency graphs for one module."""

    module: Module
    #: name -> declaring statement (ports map to their Port object)
    decls: dict[str, object] = field(default_factory=dict)
    port_dirs: dict[str, str] = field(default_factory=dict)
    #: name -> statements that drive it (Connect/DefNode/DefRegister/MemWrite)
    drivers: dict[str, list[Stmt]] = field(default_factory=dict)
    #: name -> statements whose expressions read it (def-use edges)
    readers: dict[str, list[Stmt]] = field(default_factory=dict)
    #: combinational same-cycle dependencies (includes ``inst.port`` nodes)
    comb_deps: dict[str, set[str]] = field(default_factory=dict)
    #: names of registers (sequential barrier in ``comb_deps``)
    registers: set[str] = field(default_factory=set)
    #: instance name -> child module name
    instances: dict[str, str] = field(default_factory=dict)

    def reads_of(self, name: str) -> list[Stmt]:
        return self.readers.get(name, [])

    def drives_of(self, name: str) -> list[Stmt]:
        return self.drivers.get(name, [])


def build_module_dataflow(
    module: Module,
    port_coupling: Optional[dict[str, dict[str, set[str]]]] = None,
    instances_of: Optional[dict[str, str]] = None,
) -> ModuleDataflow:
    """Build both graphs for one module.

    ``port_coupling`` maps child module names to their ``output ->
    {combinationally coupled inputs}`` summaries; when given, instance
    pseudo-nodes are wired through it (cross-module loop detection).
    """
    df = ModuleDataflow(module)
    for port in module.ports:
        df.decls[port.name] = port
        df.port_dirs[port.name] = port.direction

    def add_dep(name: str, deps: Iterable[str]) -> None:
        df.comb_deps.setdefault(name, set()).update(deps)

    def add_reader(stmt: Stmt, expr: Expr) -> None:
        for name in data_reads(expr):
            df.readers.setdefault(name, []).append(stmt)

    def walk(body: list[Stmt], preds: list[Expr]) -> None:
        pred_reads = [r for p in preds for r in comb_reads(p)]
        for stmt in body:
            if isinstance(stmt, (DefNode, DefWire, DefRegister, DefMemory, DefInstance)):
                df.decls[stmt.name] = stmt
            if isinstance(stmt, DefNode):
                df.drivers.setdefault(stmt.name, []).append(stmt)
                add_dep(stmt.name, comb_reads(stmt.value))
                add_reader(stmt, stmt.value)
            elif isinstance(stmt, DefRegister):
                df.registers.add(stmt.name)
                df.drivers.setdefault(stmt.name, []).append(stmt)
                for e in (stmt.reset, stmt.init):
                    if e is not None:
                        add_reader(stmt, e)
                add_reader(stmt, stmt.clock)
            elif isinstance(stmt, DefInstance):
                df.instances[stmt.name] = stmt.module
            elif isinstance(stmt, Connect):
                add_reader(stmt, stmt.expr)
                reads = list(comb_reads(stmt.expr)) + pred_reads
                if isinstance(stmt.loc, InstPort):
                    target = f"{stmt.loc.instance}.{stmt.loc.port}"
                else:
                    target = stmt.loc.name
                df.drivers.setdefault(target, []).append(stmt)
                # register next-values are sequential: no comb edge
                if target not in df.registers:
                    add_dep(target, reads)
            elif isinstance(stmt, MemWrite):
                df.drivers.setdefault(stmt.mem, []).append(stmt)
                for e in (stmt.addr, stmt.data, stmt.en, stmt.clock):
                    add_reader(stmt, e)
            elif isinstance(stmt, (Cover, Stop)):
                for e in (stmt.clock, stmt.pred, stmt.en):
                    add_reader(stmt, e)
            elif isinstance(stmt, When):
                add_reader(stmt, stmt.pred)
                walk(stmt.conseq, preds + [stmt.pred])
                walk(stmt.alt, preds + [stmt.pred])

    walk(module.body, [])

    # wire child port couplings: inst.out depends on inst.in for each
    # combinationally-coupled (out, in) pair of the child module
    if port_coupling is not None:
        for inst, child in df.instances.items():
            for out_port, in_ports in port_coupling.get(child, {}).items():
                add_dep(
                    f"{inst}.{out_port}",
                    {f"{inst}.{p}" for p in in_ports},
                )
    return df


def strongly_connected_components(deps: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's SCC over ``deps``; only components with a cycle are returned.

    Iterative (flattened SoCs produce deep chains), deterministic order.
    """
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def connect(root: str) -> None:
        work: list[tuple[str, Iterator[str]]] = []
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        work.append((root, iter(sorted(deps.get(root, ())))))
        while work:
            node, it = work[-1]
            advanced = False
            for dep in it:
                if dep not in deps:
                    continue
                if dep not in index:
                    index[dep] = lowlink[dep] = counter[0]
                    counter[0] += 1
                    stack.append(dep)
                    on_stack.add(dep)
                    work.append((dep, iter(sorted(deps.get(dep, ())))))
                    advanced = True
                    break
                if dep in on_stack:
                    lowlink[node] = min(lowlink[node], index[dep])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in deps.get(node, ()):
                    sccs.append(sorted(component))

    for name in sorted(deps):
        if name not in index:
            connect(name)
    return sccs


@dataclass
class CircuitDataflow:
    """Per-module dataflow plus hierarchy-level port-coupling summaries."""

    circuit: Circuit
    modules: dict[str, ModuleDataflow]
    #: module -> output port -> input ports it combinationally depends on
    port_coupling: dict[str, dict[str, set[str]]]


def _coupling_of(df: ModuleDataflow) -> dict[str, set[str]]:
    """``output -> {input ports}`` reachable through ``comb_deps``."""
    inputs = {n for n, d in df.port_dirs.items() if d == "input"}
    reach_cache: dict[str, set[str]] = {}

    def reach(name: str) -> set[str]:
        if name in reach_cache:
            return reach_cache[name]
        reach_cache[name] = set()  # cycle guard; loops reported elsewhere
        found: set[str] = set()
        for dep in df.comb_deps.get(name, ()):
            if dep in inputs:
                found.add(dep)
            found |= reach(dep)
        reach_cache[name] = found
        return found

    return {
        name: reach(name)
        for name, direction in df.port_dirs.items()
        if direction == "output"
    }


def _instantiation_order(circuit: Circuit) -> list[Module]:
    """Modules ordered children-first (the hierarchy is a DAG)."""
    by_name = {m.name: m for m in circuit.modules}
    order: list[Module] = []
    seen: set[str] = set()

    def visit(module: Module) -> None:
        if module.name in seen:
            return
        seen.add(module.name)
        from ..ir.traversal import walk_stmts

        for stmt in walk_stmts(module.body):
            if isinstance(stmt, DefInstance) and stmt.module in by_name:
                visit(by_name[stmt.module])
        order.append(module)

    for module in circuit.modules:
        visit(module)
    return order


def build_circuit_dataflow(circuit: Circuit) -> CircuitDataflow:
    """Dataflow for every module, child-first so couplings compose."""
    modules: dict[str, ModuleDataflow] = {}
    coupling: dict[str, dict[str, set[str]]] = {}
    for module in _instantiation_order(circuit):
        df = build_module_dataflow(module, port_coupling=coupling)
        modules[module.name] = df
        coupling[module.name] = _coupling_of(df)
    return CircuitDataflow(circuit, modules, coupling)


def get_dataflow(state: CompileState) -> CircuitDataflow:
    """The circuit's dataflow, computed once and cached on the state.

    The cache key is the identity of the circuit object: passes that
    rebuild the circuit produce a fresh object, invalidating the cache,
    while repeated analyses over one pipeline stage share the build.
    """
    cached = state.metadata.get(CACHE_KEY)
    if cached is not None and cached[0] == id(state.circuit):
        return cached[1]
    df = build_circuit_dataflow(state.circuit)
    state.metadata[CACHE_KEY] = (id(state.circuit), df)
    return df
