"""The simulator-independent coverage interface (§3 of the paper).

Every backend — software interpreter, compiled simulator, FPGA-accelerated
model, formal engine — implements a single contract:

* it can simulate any synchronous circuit expressible in the IR, and
* it implements the ``cover`` primitive: a saturating counter, keyed by the
  cover statement's name joined with its instance path, incremented on every
  rising clock edge where the covered predicate is true.

Coverage results are plain ``dict[str, int]`` maps from canonical
hierarchical cover names to counts, which is what makes results from
different backends trivially mergeable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, runtime_checkable

from ..ir.nodes import Circuit

#: canonical coverage result: hierarchical cover name -> saturating count
CoverCounts = dict[str, int]


def saturate(count: int, counter_width: Optional[int]) -> int:
    """Clamp a count to the maximum value of a ``counter_width``-bit counter.

    ``count`` is a raw non-negative event count; the return value is the
    same count, or ``2**counter_width - 1`` if it would overflow the
    hardware counter being modeled.  ``counter_width=None`` means
    unbounded software counters (no clamping).  Pure function, safe from
    any thread.
    """
    if counter_width is None:
        return count
    limit = (1 << counter_width) - 1
    return count if count < limit else limit


@dataclass
class StepResult:
    """Outcome of advancing the simulation by some clock cycles.

    ``cycles`` is the number of rising clock edges actually executed in
    this call — less than requested when a ``stop`` statement fired, and
    ``0`` when the simulation was already halted (re-stepping a halted
    simulation reports the original ``stop_name``/``exit_code`` again
    without advancing).  ``stop_name`` is the canonical hierarchical name
    of the stop that fired, and ``exit_code`` its FIRRTL exit value
    (non-zero conventionally means assertion failure).
    """

    cycles: int
    stopped: bool = False
    stop_name: Optional[str] = None
    exit_code: int = 0


class SimulationFault(RuntimeError):
    """Base class for contained backend failures.

    Raised by (or on behalf of) a misbehaving simulation; the run
    orchestrator (:mod:`repro.runtime`) converts these into structured
    :class:`RunFailure` records instead of letting them kill a campaign.
    """


class SimulationCrash(SimulationFault):
    """The backend process/model died mid-run."""


class SimulationTimeout(SimulationFault):
    """A ``step()`` call exceeded its wall-clock budget (hang)."""


class ScanChainCorruption(SimulationFault):
    """A FireSim scan-out read back inconsistent bits (CRC mismatch)."""


@dataclass
class RunFailure:
    """One failed attempt of one job, as recorded by the executor."""

    job_id: str
    backend: str
    kind: str  # crash | timeout | scan-corruption | error
    attempt: int
    cycle: Optional[int] = None
    message: str = ""

    def format(self) -> str:
        """One-line human-readable rendering for logs and reports."""
        where = f" at cycle {self.cycle}" if self.cycle is not None else ""
        return (
            f"[{self.job_id}/{self.backend}] attempt {self.attempt}: "
            f"{self.kind}{where}: {self.message}"
        )

    @staticmethod
    def kind_of(error: BaseException) -> str:
        """Classify an exception into a stable failure-kind string."""
        if isinstance(error, SimulationTimeout):
            return "timeout"
        if isinstance(error, ScanChainCorruption):
            return "scan-corruption"
        if isinstance(error, SimulationCrash):
            return "crash"
        return "error"


@runtime_checkable
class Simulation(Protocol):
    """A live simulation instance.

    Ports are addressed by their top-level names; values are raw
    (non-negative) bit patterns — an N-bit signed port carries its
    two's-complement encoding in ``[0, 2**N)``, never a negative int.

    Instances are **not** thread-safe: one simulation belongs to one
    thread (the executor gives every worker its own instance, sharing
    only immutable compiled artifacts between them).  Methods may raise
    :class:`SimulationFault` subclasses when the underlying engine
    crashes or hangs; those are contained by the run orchestrator.
    """

    def poke(self, port: str, value: int) -> None:
        """Drive a top-level input with a raw bit pattern.

        ``value`` is masked to the port's width (extra high bits are
        dropped, matching Verilog assignment semantics); it takes effect
        at the next combinational settle or clock edge.  Raises
        ``KeyError`` if ``port`` is not a top-level input.
        """
        ...

    def peek(self, port: str) -> int:
        """Sample a top-level port (input or output) as a raw bit pattern.

        Settles combinational logic first, so the value reflects all
        pokes since the last edge.  The result is always non-negative;
        reinterpret signed ports yourself.  Raises ``KeyError`` for an
        unknown port name.
        """
        ...

    def step(self, cycles: int = 1) -> StepResult:
        """Advance by ``cycles`` rising clock edges.

        Returns early if a ``stop`` statement fires, with
        ``StepResult.cycles`` counting only the edges executed.
        ``cycles <= 0`` is a no-op returning ``StepResult(0)``.  May
        raise :class:`SimulationTimeout` (wall-clock budget exceeded) or
        :class:`SimulationCrash` (engine died) on misbehaving designs.
        """
        ...

    def cover_counts(self) -> CoverCounts:
        """Saturating cover counters keyed by canonical hierarchical name.

        Counts are cumulative edges-where-predicate-held since the last
        reset, clamped per :func:`saturate` when a ``counter_width`` was
        requested at compile time.  Reading does not perturb the
        counters; the returned dict is a snapshot the caller owns.
        """
        ...


class SimulatorBackend(Protocol):
    """A factory turning circuits into simulations.

    Backends are cheap to construct and safe to share across threads;
    the :class:`Simulation` objects they hand out are not (see that
    protocol's notes).  Compilation may be arbitrarily expensive —
    backends route it through :func:`repro.backends.modelcache.compile_cached`
    so repeated compiles of the same circuit hit the model cache.
    """

    name: str

    def compile(self, circuit: Circuit, counter_width: Optional[int] = None) -> Simulation:
        """Compile ``circuit`` into a fresh, reset simulation instance.

        ``counter_width`` bounds cover counters to that many bits
        (``None`` = unbounded software counters).  Raises
        ``ValueError``/``KeyError`` on malformed circuits; backends with
        native toolchains (verilator, c) degrade to a slower tier with a
        ``RuntimeWarning`` rather than raise when the toolchain is
        missing.
        """
        ...

    def compile_state(self, state, counter_width: Optional[int] = None) -> Simulation:
        """Like :meth:`compile`, but from an already-lowered CompileState.

        Skips re-running the lowering pipeline when the caller (the
        instrumentation flow, the model cache) already holds the lowered
        form; semantics, units, and failure modes are those of
        :meth:`compile`.  The state is treated as immutable — backends
        that must transform it (e.g. FireSim's scan-chain insertion)
        work on a copy.
        """
        ...


@dataclass
class BackendInfo:
    """Registry entry describing a backend (mirrors the paper's Table of §3)."""

    name: str
    description: str
    kind: str  # interpreter | compiled | fpga | formal
    startup_cost: str  # qualitative: none | compile | synthesis


def has_port(sim: Simulation, port: str) -> bool:
    """Whether ``sim`` exposes a top-level port named ``port``.

    Probes via ``peek`` — every backend raises ``KeyError`` for unknown
    ports, which is the only portable signal the protocol offers.
    """
    try:
        sim.peek(port)
    except KeyError:
        return False
    return True


def metered_step(meter, run: Callable[[], object], cycles_of=None):
    """Run one ``step()`` batch, crediting wall time and cycles to ``meter``.

    The one telemetry wrapper every software backend's hot loop shares:
    one attribute check when telemetry is disabled, one timed call and a
    :class:`~repro.runtime.telemetry.StepMeter` credit when enabled.
    Time is wall-clock seconds (``time.perf_counter``), cycles are clock
    edges; together they feed the ``repro_backend_cycles_per_second``
    gauge.  ``cycles_of`` extracts the cycle count from ``run``'s
    result; by default the result itself is the count (backends whose
    generated ``run`` returns a plain integer).  Thread-safety is the
    meter's concern: :class:`StepMeter` adds are not atomic, so each
    simulation owns its own meter.  Exceptions from ``run`` propagate
    unchanged with nothing credited.
    """
    if not obs.enabled:
        return run()
    started = time.perf_counter()
    result = run()
    cycles = cycles_of(result) if cycles_of is not None else result
    meter.add(cycles, time.perf_counter() - started)
    return result


def reset_and_run(sim: Simulation, cycles: int, reset_cycles: int = 1) -> StepResult:
    """Common harness helper: hold reset (if the design has one), then run.

    Designs without a top-level ``reset`` port simply skip the reset phase
    rather than blowing up the harness.  Raises ``ValueError`` on
    non-positive ``cycles`` or negative ``reset_cycles``; anything the
    underlying ``step`` raises propagates.
    """
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    if reset_cycles < 0:
        raise ValueError(f"reset_cycles must be non-negative, got {reset_cycles}")
    if reset_cycles and has_port(sim, "reset"):
        sim.poke("reset", 1)
        sim.step(reset_cycles)
        sim.poke("reset", 0)
    return sim.step(cycles)


# Imported last: repro.runtime.executor imports this module while the
# runtime package initializes, so a top-of-file import would hit a cycle
# before the protocol types above exist.  telemetry itself has no
# intra-package imports and is always initialized first.
from ..runtime.telemetry import obs  # noqa: E402
