"""The simulator-independent coverage interface (§3 of the paper).

Every backend — software interpreter, compiled simulator, FPGA-accelerated
model, formal engine — implements a single contract:

* it can simulate any synchronous circuit expressible in the IR, and
* it implements the ``cover`` primitive: a saturating counter, keyed by the
  cover statement's name joined with its instance path, incremented on every
  rising clock edge where the covered predicate is true.

Coverage results are plain ``dict[str, int]`` maps from canonical
hierarchical cover names to counts, which is what makes results from
different backends trivially mergeable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, runtime_checkable

from ..ir.nodes import Circuit

#: canonical coverage result: hierarchical cover name -> saturating count
CoverCounts = dict[str, int]


def saturate(count: int, counter_width: Optional[int]) -> int:
    """Clamp a count to the maximum value of a ``counter_width``-bit counter."""
    if counter_width is None:
        return count
    limit = (1 << counter_width) - 1
    return count if count < limit else limit


@dataclass
class StepResult:
    """Outcome of advancing the simulation by some clock cycles."""

    cycles: int
    stopped: bool = False
    stop_name: Optional[str] = None
    exit_code: int = 0


class SimulationFault(RuntimeError):
    """Base class for contained backend failures.

    Raised by (or on behalf of) a misbehaving simulation; the run
    orchestrator (:mod:`repro.runtime`) converts these into structured
    :class:`RunFailure` records instead of letting them kill a campaign.
    """


class SimulationCrash(SimulationFault):
    """The backend process/model died mid-run."""


class SimulationTimeout(SimulationFault):
    """A ``step()`` call exceeded its wall-clock budget (hang)."""


class ScanChainCorruption(SimulationFault):
    """A FireSim scan-out read back inconsistent bits (CRC mismatch)."""


@dataclass
class RunFailure:
    """One failed attempt of one job, as recorded by the executor."""

    job_id: str
    backend: str
    kind: str  # crash | timeout | scan-corruption | error
    attempt: int
    cycle: Optional[int] = None
    message: str = ""

    def format(self) -> str:
        where = f" at cycle {self.cycle}" if self.cycle is not None else ""
        return (
            f"[{self.job_id}/{self.backend}] attempt {self.attempt}: "
            f"{self.kind}{where}: {self.message}"
        )

    @staticmethod
    def kind_of(error: BaseException) -> str:
        if isinstance(error, SimulationTimeout):
            return "timeout"
        if isinstance(error, ScanChainCorruption):
            return "scan-corruption"
        if isinstance(error, SimulationCrash):
            return "crash"
        return "error"


@runtime_checkable
class Simulation(Protocol):
    """A live simulation instance.

    Ports are addressed by their top-level names; values are raw
    (non-negative) bit patterns.
    """

    def poke(self, port: str, value: int) -> None:
        """Drive a top-level input."""
        ...

    def peek(self, port: str) -> int:
        """Sample a top-level port (inputs or outputs)."""
        ...

    def step(self, cycles: int = 1) -> StepResult:
        """Advance by rising clock edges; stops early if a Stop fires."""
        ...

    def cover_counts(self) -> CoverCounts:
        """Saturating cover counters keyed by canonical hierarchical name."""
        ...


class SimulatorBackend(Protocol):
    """A factory turning circuits into simulations."""

    name: str

    def compile(self, circuit: Circuit, counter_width: Optional[int] = None) -> Simulation:
        ...


@dataclass
class BackendInfo:
    """Registry entry describing a backend (mirrors the paper's Table of §3)."""

    name: str
    description: str
    kind: str  # interpreter | compiled | fpga | formal
    startup_cost: str  # qualitative: none | compile | synthesis


def has_port(sim: Simulation, port: str) -> bool:
    """Whether ``sim`` exposes a top-level port named ``port``.

    Probes via ``peek`` — every backend raises ``KeyError`` for unknown
    ports, which is the only portable signal the protocol offers.
    """
    try:
        sim.peek(port)
    except KeyError:
        return False
    return True


def metered_step(meter, run: Callable[[], object], cycles_of=None):
    """Run one ``step()`` batch, crediting wall time and cycles to ``meter``.

    The one telemetry wrapper every software backend's hot loop shares:
    one attribute check when telemetry is disabled, one timed call and a
    :class:`~repro.runtime.telemetry.StepMeter` credit when enabled.
    ``cycles_of`` extracts the cycle count from ``run``'s result; by
    default the result itself is the count (backends whose generated
    ``run`` returns a plain integer).
    """
    if not obs.enabled:
        return run()
    started = time.perf_counter()
    result = run()
    cycles = cycles_of(result) if cycles_of is not None else result
    meter.add(cycles, time.perf_counter() - started)
    return result


def reset_and_run(sim: Simulation, cycles: int, reset_cycles: int = 1) -> StepResult:
    """Common harness helper: hold reset (if the design has one), then run.

    Designs without a top-level ``reset`` port simply skip the reset phase
    rather than blowing up the harness.
    """
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    if reset_cycles < 0:
        raise ValueError(f"reset_cycles must be non-negative, got {reset_cycles}")
    if reset_cycles and has_port(sim, "reset"):
        sim.poke("reset", 1)
        sim.step(reset_cycles)
        sim.poke("reset", 0)
    return sim.step(cycles)


# Imported last: repro.runtime.executor imports this module while the
# runtime package initializes, so a top-of-file import would hit a cycle
# before the protocol types above exist.  telemetry itself has no
# intra-package imports and is always initialized first.
from ..runtime.telemetry import obs  # noqa: E402
