"""The simulator-independent coverage interface (§3 of the paper).

Every backend — software interpreter, compiled simulator, FPGA-accelerated
model, formal engine — implements a single contract:

* it can simulate any synchronous circuit expressible in the IR, and
* it implements the ``cover`` primitive: a saturating counter, keyed by the
  cover statement's name joined with its instance path, incremented on every
  rising clock edge where the covered predicate is true.

Coverage results are plain ``dict[str, int]`` maps from canonical
hierarchical cover names to counts, which is what makes results from
different backends trivially mergeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

from ..ir.nodes import Circuit

#: canonical coverage result: hierarchical cover name -> saturating count
CoverCounts = dict[str, int]


def saturate(count: int, counter_width: Optional[int]) -> int:
    """Clamp a count to the maximum value of a ``counter_width``-bit counter."""
    if counter_width is None:
        return count
    limit = (1 << counter_width) - 1
    return count if count < limit else limit


@dataclass
class StepResult:
    """Outcome of advancing the simulation by some clock cycles."""

    cycles: int
    stopped: bool = False
    stop_name: Optional[str] = None
    exit_code: int = 0


@runtime_checkable
class Simulation(Protocol):
    """A live simulation instance.

    Ports are addressed by their top-level names; values are raw
    (non-negative) bit patterns.
    """

    def poke(self, port: str, value: int) -> None:
        """Drive a top-level input."""
        ...

    def peek(self, port: str) -> int:
        """Sample a top-level port (inputs or outputs)."""
        ...

    def step(self, cycles: int = 1) -> StepResult:
        """Advance by rising clock edges; stops early if a Stop fires."""
        ...

    def cover_counts(self) -> CoverCounts:
        """Saturating cover counters keyed by canonical hierarchical name."""
        ...


class SimulatorBackend(Protocol):
    """A factory turning circuits into simulations."""

    name: str

    def compile(self, circuit: Circuit, counter_width: Optional[int] = None) -> Simulation:
        ...


@dataclass
class BackendInfo:
    """Registry entry describing a backend (mirrors the paper's Table of §3)."""

    name: str
    description: str
    kind: str  # interpreter | compiled | fpga | formal
    startup_cost: str  # qualitative: none | compile | synthesis


def reset_and_run(sim: Simulation, cycles: int, reset_cycles: int = 1) -> StepResult:
    """Common harness helper: hold reset, then run for ``cycles``."""
    if reset_cycles:
        sim.poke("reset", 1)
        sim.step(reset_cycles)
        sim.poke("reset", 0)
    return sim.step(cycles)
