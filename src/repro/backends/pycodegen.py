"""Python code generation shared by the compiled simulator backends.

Translates IR expressions into Python source over *raw masked integers*.
The invariant: every generated sub-expression evaluates to the operand's
raw bit pattern (non-negative, already truncated to its width).  Signed
interpretation happens locally inside each op via inline sign-fixup
expressions, mirroring :mod:`repro.ir.ops` exactly — a property test pins
the two against each other.
"""

from __future__ import annotations

import re
from typing import Callable

from ..ir.nodes import Expr, MemRead, Mux, PrimOp, Ref, SIntLiteral, UIntLiteral
from ..ir.types import bit_width, is_signed, mask

#: Version of the generated-code contract.  Any change to the code this
#: module (or a backend's ``generate_source``) emits — operator lowering,
#: state layout, cover sampling — must bump it: the content-addressed
#: model cache (:mod:`repro.backends.modelcache`) mixes it into every
#: cache key, so a bump invalidates all persisted entries at once.
CODEGEN_VERSION = 1

RefFn = Callable[[str], str]
MemFn = Callable[[str], str]


def pynames(names: list[str]) -> dict[str, str]:
    """Map signal names to safe, unique Python identifiers."""
    out: dict[str, str] = {}
    used: set[str] = set()
    for index, name in enumerate(names):
        base = "v_" + re.sub(r"[^A-Za-z0-9_]", "_", name)
        candidate = base
        while candidate in used:
            candidate = f"{base}_{index}"
        used.add(candidate)
        out[name] = candidate
    return out


class CodeBuilder:
    """Indentation-tracking line accumulator for generated modules."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, text: str = "") -> None:
        """Append one line at the current indentation depth."""
        self.lines.append("    " * self.depth + text if text else "")

    def source(self) -> str:
        """The accumulated module source, newline-terminated."""
        return "\n".join(self.lines) + "\n"


def predicate(gen, pred, en) -> str:
    """A cover/stop firing condition, dropping a constant-true enable."""
    pred_text = gen(pred)
    if isinstance(en, UIntLiteral) and en.value == 1:
        return pred_text
    return f"({gen(en)}) and ({pred_text})"


def _s(text: str, width: int) -> str:
    """Sign-interpret a raw ``width``-bit value (inline expression)."""
    sign_bit = 1 << (width - 1)
    offset = 1 << width
    return f"({text} - {offset} if {text} & {sign_bit} else {text})"


def _val(expr: Expr, text: str) -> str:
    """The numeric value of an operand (signed interpretation if needed)."""
    if is_signed(expr.tpe):
        return _s(text, bit_width(expr.tpe))
    return text


def gen_expr(expr: Expr, ref: RefFn, mem: MemFn) -> str:
    """Generate a Python expression computing ``expr``'s raw value."""
    if isinstance(expr, Ref):
        return ref(expr.name)
    if isinstance(expr, UIntLiteral):
        return str(expr.value)
    if isinstance(expr, SIntLiteral):
        return str(expr.value & mask(expr.width))
    if isinstance(expr, Mux):
        cond = gen_expr(expr.cond, ref, mem)
        width = bit_width(expr.type)
        arms = []
        for arm in (expr.tval, expr.fval):
            text = gen_expr(arm, ref, mem)
            if is_signed(arm.tpe) and bit_width(arm.tpe) < width:
                text = f"({_s(text, bit_width(arm.tpe))} & {mask(width)})"
            arms.append(text)
        return f"({arms[0]} if {cond} else {arms[1]})"
    if isinstance(expr, MemRead):
        addr = gen_expr(expr.addr, ref, mem)
        return f"{mem(expr.mem)}[{addr}]"
    if isinstance(expr, PrimOp):
        return _gen_primop(expr, ref, mem)
    raise TypeError(f"cannot generate code for {expr!r}")


def _gen_primop(expr: PrimOp, ref: RefFn, mem: MemFn) -> str:
    op = expr.op
    args = expr.args
    texts = [gen_expr(a, ref, mem) for a in args]
    result_w = bit_width(expr.type)
    result_mask = mask(result_w)

    if op in ("add", "sub", "mul"):
        symbol = {"add": "+", "sub": "-", "mul": "*"}[op]
        return f"(({_val(args[0], texts[0])} {symbol} {_val(args[1], texts[1])}) & {result_mask})"
    if op == "div":
        return f"(_tdiv({_val(args[0], texts[0])}, {_val(args[1], texts[1])}) & {result_mask})"
    if op == "rem":
        return f"(_trem({_val(args[0], texts[0])}, {_val(args[1], texts[1])}) & {result_mask})"
    if op in ("lt", "leq", "gt", "geq", "eq", "neq"):
        symbol = {"lt": "<", "leq": "<=", "gt": ">", "geq": ">=", "eq": "==", "neq": "!="}[op]
        return f"(1 if {_val(args[0], texts[0])} {symbol} {_val(args[1], texts[1])} else 0)"
    if op in ("and", "or", "xor"):
        symbol = {"and": "&", "or": "|", "xor": "^"}[op]
        return f"(({_val(args[0], texts[0])} {symbol} {_val(args[1], texts[1])}) & {result_mask})"
    if op == "not":
        return f"(({_val(args[0], texts[0])} ^ -1) & {result_mask})"
    if op == "neg":
        return f"((-{_val(args[0], texts[0])}) & {result_mask})"
    if op in ("asUInt", "asSInt"):
        return texts[0]
    if op == "cat":
        lo_w = bit_width(args[1].tpe)
        return f"(({texts[0]} << {lo_w}) | {texts[1]})"
    if op == "bits":
        hi, lo = expr.consts
        if lo == 0:
            return f"({texts[0]} & {mask(hi + 1)})"
        return f"(({texts[0]} >> {lo}) & {mask(hi - lo + 1)})"
    if op == "head":
        (count,) = expr.consts
        shift = bit_width(args[0].tpe) - count
        return f"(({texts[0]} >> {shift}) & {mask(count)})"
    if op == "tail":
        (count,) = expr.consts
        return f"({texts[0]} & {mask(bit_width(args[0].tpe) - count)})"
    if op == "shl":
        (count,) = expr.consts
        return f"({texts[0]} << {count})"
    if op == "shr":
        (count,) = expr.consts
        if is_signed(args[0].tpe):
            return f"(({_val(args[0], texts[0])} >> {count}) & {result_mask})"
        if count >= bit_width(args[0].tpe):
            return "0"
        return f"({texts[0]} >> {count})"
    if op == "dshl":
        if is_signed(args[0].tpe):
            return f"(({_val(args[0], texts[0])} << {texts[1]}) & {result_mask})"
        return f"({texts[0]} << {texts[1]})"
    if op == "dshr":
        if is_signed(args[0].tpe):
            return f"(({_val(args[0], texts[0])} >> {texts[1]}) & {result_mask})"
        return f"({texts[0]} >> {texts[1]})"
    if op == "andr":
        return f"(1 if {texts[0]} == {mask(bit_width(args[0].tpe))} else 0)"
    if op == "orr":
        return f"(1 if {texts[0]} else 0)"
    if op == "xorr":
        return f"(({texts[0]}).bit_count() & 1)"
    if op == "pad":
        if is_signed(args[0].tpe) and bit_width(args[0].tpe) < result_w:
            return f"({_val(args[0], texts[0])} & {result_mask})"
        return texts[0]
    raise TypeError(f"cannot generate code for primop {op}")


RUNTIME_HELPERS = '''
def _tdiv(a, b):
    """Division truncating toward zero; x/0 == 0 (matches repro.ir.ops)."""
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _trem(a, b):
    """Remainder with the dividend's sign; x%0 == x."""
    if b == 0:
        return a
    return a - _tdiv(a, b) * b
'''
