"""Python code generation shared by the compiled simulator backends.

Translates IR expressions into Python source over *raw masked integers*.
The invariant: every generated sub-expression evaluates to the operand's
raw bit pattern (non-negative, already truncated to its width).  Signed
interpretation happens locally inside each op via inline sign-fixup
expressions, mirroring :mod:`repro.ir.ops` exactly — a property test pins
the two against each other.
"""

from __future__ import annotations

import re
from typing import Callable

from ..ir.nodes import Expr, MemRead, Mux, PrimOp, Ref, SIntLiteral, UIntLiteral
from ..ir.types import bit_width, is_signed, mask

#: Version of the generated-code contract.  Any change to the code this
#: module (or a backend's ``generate_source``) emits — operator lowering,
#: state layout, cover sampling — must bump it: the content-addressed
#: model cache (:mod:`repro.backends.modelcache`) mixes it into every
#: cache key, so a bump invalidates all persisted entries at once.
CODEGEN_VERSION = 1

RefFn = Callable[[str], str]
MemFn = Callable[[str], str]


def pynames(names: list[str]) -> dict[str, str]:
    """Map signal names to safe, unique Python identifiers."""
    out: dict[str, str] = {}
    used: set[str] = set()
    for index, name in enumerate(names):
        base = "v_" + re.sub(r"[^A-Za-z0-9_]", "_", name)
        candidate = base
        while candidate in used:
            candidate = f"{base}_{index}"
        used.add(candidate)
        out[name] = candidate
    return out


class CodeBuilder:
    """Indentation-tracking line accumulator for generated modules."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, text: str = "") -> None:
        """Append one line at the current indentation depth."""
        self.lines.append("    " * self.depth + text if text else "")

    def source(self) -> str:
        """The accumulated module source, newline-terminated."""
        return "\n".join(self.lines) + "\n"


def predicate(gen, pred, en) -> str:
    """A cover/stop firing condition, dropping a constant-true enable."""
    pred_text = gen(pred)
    if isinstance(en, UIntLiteral) and en.value == 1:
        return pred_text
    return f"({gen(en)}) and ({pred_text})"


def _s(text: str, width: int) -> str:
    """Sign-interpret a raw ``width``-bit value (inline expression)."""
    sign_bit = 1 << (width - 1)
    offset = 1 << width
    return f"({text} - {offset} if {text} & {sign_bit} else {text})"


def _val(expr: Expr, text: str) -> str:
    """The numeric value of an operand (signed interpretation if needed)."""
    if is_signed(expr.tpe):
        return _s(text, bit_width(expr.tpe))
    return text


def gen_expr(expr: Expr, ref: RefFn, mem: MemFn) -> str:
    """Generate a Python expression computing ``expr``'s raw value."""
    if isinstance(expr, Ref):
        return ref(expr.name)
    if isinstance(expr, UIntLiteral):
        return str(expr.value)
    if isinstance(expr, SIntLiteral):
        return str(expr.value & mask(expr.width))
    if isinstance(expr, Mux):
        cond = gen_expr(expr.cond, ref, mem)
        width = bit_width(expr.type)
        arms = []
        for arm in (expr.tval, expr.fval):
            text = gen_expr(arm, ref, mem)
            if is_signed(arm.tpe) and bit_width(arm.tpe) < width:
                text = f"({_s(text, bit_width(arm.tpe))} & {mask(width)})"
            arms.append(text)
        return f"({arms[0]} if {cond} else {arms[1]})"
    if isinstance(expr, MemRead):
        addr = gen_expr(expr.addr, ref, mem)
        return f"{mem(expr.mem)}[{addr}]"
    if isinstance(expr, PrimOp):
        return _gen_primop(expr, ref, mem)
    raise TypeError(f"cannot generate code for {expr!r}")


def _gen_primop(expr: PrimOp, ref: RefFn, mem: MemFn) -> str:
    op = expr.op
    args = expr.args
    texts = [gen_expr(a, ref, mem) for a in args]
    result_w = bit_width(expr.type)
    result_mask = mask(result_w)

    if op in ("add", "sub", "mul"):
        symbol = {"add": "+", "sub": "-", "mul": "*"}[op]
        return f"(({_val(args[0], texts[0])} {symbol} {_val(args[1], texts[1])}) & {result_mask})"
    if op == "div":
        return f"(_tdiv({_val(args[0], texts[0])}, {_val(args[1], texts[1])}) & {result_mask})"
    if op == "rem":
        return f"(_trem({_val(args[0], texts[0])}, {_val(args[1], texts[1])}) & {result_mask})"
    if op in ("lt", "leq", "gt", "geq", "eq", "neq"):
        symbol = {"lt": "<", "leq": "<=", "gt": ">", "geq": ">=", "eq": "==", "neq": "!="}[op]
        return f"(1 if {_val(args[0], texts[0])} {symbol} {_val(args[1], texts[1])} else 0)"
    if op in ("and", "or", "xor"):
        symbol = {"and": "&", "or": "|", "xor": "^"}[op]
        return f"(({_val(args[0], texts[0])} {symbol} {_val(args[1], texts[1])}) & {result_mask})"
    if op == "not":
        return f"(({_val(args[0], texts[0])} ^ -1) & {result_mask})"
    if op == "neg":
        return f"((-{_val(args[0], texts[0])}) & {result_mask})"
    if op in ("asUInt", "asSInt"):
        return texts[0]
    if op == "cat":
        lo_w = bit_width(args[1].tpe)
        return f"(({texts[0]} << {lo_w}) | {texts[1]})"
    if op == "bits":
        hi, lo = expr.consts
        if lo == 0:
            return f"({texts[0]} & {mask(hi + 1)})"
        return f"(({texts[0]} >> {lo}) & {mask(hi - lo + 1)})"
    if op == "head":
        (count,) = expr.consts
        shift = bit_width(args[0].tpe) - count
        return f"(({texts[0]} >> {shift}) & {mask(count)})"
    if op == "tail":
        (count,) = expr.consts
        return f"({texts[0]} & {mask(bit_width(args[0].tpe) - count)})"
    if op == "shl":
        (count,) = expr.consts
        return f"({texts[0]} << {count})"
    if op == "shr":
        (count,) = expr.consts
        if is_signed(args[0].tpe):
            return f"(({_val(args[0], texts[0])} >> {count}) & {result_mask})"
        if count >= bit_width(args[0].tpe):
            return "0"
        return f"({texts[0]} >> {count})"
    if op == "dshl":
        if is_signed(args[0].tpe):
            return f"(({_val(args[0], texts[0])} << {texts[1]}) & {result_mask})"
        return f"({texts[0]} << {texts[1]})"
    if op == "dshr":
        if is_signed(args[0].tpe):
            return f"(({_val(args[0], texts[0])} >> {texts[1]}) & {result_mask})"
        return f"({texts[0]} >> {texts[1]})"
    if op == "andr":
        return f"(1 if {texts[0]} == {mask(bit_width(args[0].tpe))} else 0)"
    if op == "orr":
        return f"(1 if {texts[0]} else 0)"
    if op == "xorr":
        return f"(({texts[0]}).bit_count() & 1)"
    if op == "pad":
        if is_signed(args[0].tpe) and bit_width(args[0].tpe) < result_w:
            return f"({_val(args[0], texts[0])} & {result_mask})"
        return texts[0]
    raise TypeError(f"cannot generate code for primop {op}")


RUNTIME_HELPERS = '''
def _tdiv(a, b):
    """Division truncating toward zero; x/0 == 0 (matches repro.ir.ops)."""
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _trem(a, b):
    """Remainder with the dividend's sign; x%0 == x."""
    if b == 0:
        return a
    return a - _tdiv(a, b) * b
'''


# -- swarm (bit-parallel lane) emission ---------------------------------------

#: Version of the swarm emitter's generated-code contract.  Mixed into the
#: swarm backend's cache-key options (alongside the lane count), so swarm
#: lowering changes invalidate swarm entries without touching the scalar
#: backends' cache space.
SWARM_EMITTER_VERSION = 1

#: ops with no packed lowering: per-lane products/quotients and data-dependent
#: shifts genuinely need per-lane arithmetic, and ``xorr`` is a parity
#: reduction with no carry trick.  Everything else stays a handful of
#: wide-int operations regardless of the lane count.
TRANSPOSED_OPS = frozenset({"mul", "div", "rem", "dshl", "dshr", "xorr"})

SWARM_RUNTIME_HELPERS = '''
def _sx(x, sh, ext):
    """Packed sign-extension: OR each lane's sign bit, spread over ``ext``.

    ``sh`` is the sign-bit position inside the lane, ``ext`` the (scalar)
    extension-bit mask; multiplying the lane-base sign bits by it fills
    every negative lane's extension bits in one operation.
    """
    return x | (((x >> sh) & _R1) * ext)


def _nz(x):
    """Per-lane ``value != 0``, as a lane-base bit mask.

    Adding ``2**(_S-1) - 1`` to each lane carries into the (always spare)
    top lane bit exactly when the lane is non-zero; lanes never overflow
    into each other because packed values use at most ``_S - 2`` bits.
    """
    return ((x + _HALF) & _TOP) >> _SHS


def _sel(c, t, f, m, km):
    """Packed 2:1 mux: ``c`` holds lane-base condition bits.

    ``m`` is the scalar result mask, ``km`` its lane-replicated form;
    ``c * m`` spreads each set condition bit across its whole lane.
    """
    s = c * m
    return (t & s) | (f & (s ^ km))


def _t1(f, a, ma):
    """Transpose a unary op: apply scalar ``f`` to every lane of ``a``."""
    r = 0
    sh = 0
    for _ in range(_L):
        r |= f((a >> sh) & ma) << sh
        sh += _S
    return r


def _t2(f, a, ma, b, mb):
    """Transpose a binary op lane by lane (see :data:`TRANSPOSED_OPS`)."""
    r = 0
    sh = 0
    for _ in range(_L):
        r |= f((a >> sh) & ma, (b >> sh) & mb) << sh
        sh += _S
    return r


def _mr(banks, a, ma):
    """Per-lane memory read: lane ``l`` reads its own backing store."""
    r = 0
    sh = 0
    for bank in banks:
        r |= bank[(a >> sh) & ma] << sh
        sh += _S
    return r


def _vadd(planes, m):
    """Carry-save add of a lane-base firing mask into a vertical counter.

    ``planes[k]`` holds bit ``k`` of every lane's count; ripple the mask
    upward, growing the list on overflow, so counters never saturate in
    the hot loop — clamping happens at read time like the scalar backends.
    """
    i = 0
    while m:
        if i == len(planes):
            planes.append(m)
            return
        c = planes[i] & m
        planes[i] ^= m
        m = c
        i += 1
'''


class SwarmEmitter:
    """Lane-transposed expression emission over a uniform lane stride.

    Packs ``lanes`` independent simulations into one Python integer per
    signal: lane ``l`` occupies bits ``[l*stride, l*stride + width)`` and
    holds exactly the raw masked value the scalar codegen maintains — the
    per-lane invariant is the scalar invariant, verbatim.  The stride is
    *uniform* across every signal (max node width in the design, plus two
    spare bits), which is what keeps width-changing ops — slices, ``cat``,
    constant shifts, pads — single shift-and-mask operations, and lets
    add/sub/compare run as SWAR arithmetic whose carries the spare bits
    absorb.  Only the ops in :data:`TRANSPOSED_OPS` (and memory ports)
    loop per lane, through scalar lambdas produced by :func:`gen_expr`,
    so their per-lane semantics are the scalar backends' by construction.

    Replicated constants (``value`` repeated in every lane) and transpose
    lambdas are hoisted into module-level names, deduplicated by value.
    """

    def __init__(self, lanes: int, stride: int, ref: RefFn, mem: MemFn) -> None:
        self.lanes = lanes
        self.stride = stride
        self.ref = ref
        self.mem = mem
        self._consts: dict[int, str] = {}
        self._lambdas: dict[str, str] = {}

    # -- hoisting -------------------------------------------------------------

    def rep(self, value: int) -> str:
        """The name of the hoisted lane-replicated constant for ``value``."""
        if value == 0:
            return "0"
        name = self._consts.get(value)
        if name is None:
            name = self._consts[value] = f"_K{len(self._consts)}"
        return name

    def _lam(self, params: str, body: str) -> str:
        """The name of the hoisted scalar lambda ``lambda params: body``."""
        source = f"lambda {params}: {body}"
        name = self._lambdas.get(source)
        if name is None:
            name = self._lambdas[source] = f"_F{len(self._lambdas)}"
        return name

    def prelude_lines(self) -> list[str]:
        """Hoisted assignments; emit after ``_R1`` is defined."""
        lines = [
            f"{name} = {value} * _R1"
            for value, name in self._consts.items()
        ]
        lines += [
            f"{name} = {source}" for source, name in self._lambdas.items()
        ]
        return lines

    # -- packed re-encoding ----------------------------------------------------

    def extend(self, text: str, tpe, width: int) -> str:
        """Zero/sign-extend a packed raw value to ``width`` bits per lane."""
        w = bit_width(tpe)
        if is_signed(tpe) and w < width:
            return f"_sx({text}, {w - 1}, {mask(width) ^ mask(w)})"
        return text

    def fit(self, text: str, tpe, width: int) -> str:
        """Packed analog of the scalar backends' register ``_fit``."""
        w = bit_width(tpe)
        if is_signed(tpe) and w < width:
            return self.extend(text, tpe, width)
        if w > width:
            return f"({text} & {self.rep(mask(width))})"
        return text

    # -- expression emission ---------------------------------------------------

    def gen(self, expr: Expr) -> str:
        """Generate a packed expression computing ``expr`` in every lane."""
        if isinstance(expr, Ref):
            return self.ref(expr.name)
        if isinstance(expr, UIntLiteral):
            return self.rep(expr.value)
        if isinstance(expr, SIntLiteral):
            return self.rep(expr.value & mask(expr.width))
        if isinstance(expr, Mux):
            width = bit_width(expr.type)
            cond = self.gen(expr.cond)
            arms = [
                self.extend(self.gen(arm), arm.tpe, width)
                for arm in (expr.tval, expr.fval)
            ]
            return (
                f"_sel({cond}, {arms[0]}, {arms[1]}, "
                f"{mask(width)}, {self.rep(mask(width))})"
            )
        if isinstance(expr, MemRead):
            addr = self.gen(expr.addr)
            addr_mask = mask(bit_width(expr.addr.tpe))
            return f"_mr({self.mem(expr.mem)}, {addr}, {addr_mask})"
        if isinstance(expr, PrimOp):
            return self._gen_primop(expr)
        raise TypeError(f"cannot generate swarm code for {expr!r}")

    def predicate(self, pred: Expr, en: Expr) -> str:
        """A packed firing mask, dropping a constant-true enable."""
        pred_text = self.gen(pred)
        if isinstance(en, UIntLiteral) and en.value == 1:
            return pred_text
        return f"({self.gen(en)} & {pred_text})"

    def _transpose(self, expr: PrimOp, texts: list[str]) -> str:
        """Per-lane fallback: a scalar lambda applied lane by lane.

        The lambda body comes from :func:`gen_expr` on a copy of the op
        whose args are plain parameter refs, so per-lane semantics equal
        the scalar backends' bit for bit.
        """
        params = ("_a", "_b")[: len(expr.args)]
        synthetic = PrimOp(
            expr.op,
            tuple(Ref(p, a.tpe) for p, a in zip(params, expr.args)),
            expr.consts,
            expr.type,
        )
        body = gen_expr(synthetic, lambda n: n, lambda n: n)
        fname = self._lam(", ".join(params), body)
        operands = ", ".join(
            f"{text}, {mask(bit_width(a.tpe))}"
            for text, a in zip(texts, expr.args)
        )
        return f"_t{len(expr.args)}({fname}, {operands})"

    def _gen_primop(self, expr: PrimOp) -> str:
        op = expr.op
        args = expr.args
        texts = [self.gen(a) for a in args]
        result_w = bit_width(expr.type)

        if op in TRANSPOSED_OPS:
            return self._transpose(expr, texts)
        if op in ("add", "sub"):
            # SWAR: extend both args to the result width (per-arg sign,
            # exactly the scalar `_val` semantics mod 2**result_w), then
            # one packed add; subtraction biases the minuend by 2**w per
            # lane so borrows can never cross a lane boundary.
            exts = [
                self.extend(t, a.tpe, result_w) for t, a in zip(texts, args)
            ]
            if op == "add":
                if any(is_signed(a.tpe) for a in args):
                    return (
                        f"(({exts[0]} + {exts[1]}) & "
                        f"{self.rep(mask(result_w))})"
                    )
                # unsigned sum already fits the (max+1)-bit result width
                return f"({exts[0]} + {exts[1]})"
            return (
                f"(({exts[0]} + {self.rep(1 << result_w)} - {exts[1]}) & "
                f"{self.rep(mask(result_w))})"
            )
        if op in ("lt", "leq", "gt", "geq"):
            return self._gen_compare(op, args, texts)
        if op in ("eq", "neq"):
            k = max(bit_width(a.tpe) for a in args)
            # one extra bit disambiguates sign: -1 (raw all-ones) must not
            # compare equal to the same-width unsigned all-ones value
            if any(is_signed(a.tpe) for a in args):
                k += 1
            exts = [self.extend(t, a.tpe, k) for t, a in zip(texts, args)]
            diff = f"({exts[0]} ^ {exts[1]})"
            return f"(_nz{diff} ^ _R1)" if op == "eq" else f"_nz{diff}"
        if op in ("and", "or", "xor"):
            symbol = {"and": "&", "or": "|", "xor": "^"}[op]
            exts = [
                self.extend(t, a.tpe, result_w) for t, a in zip(texts, args)
            ]
            return f"({exts[0]} {symbol} {exts[1]})"
        if op == "not":
            return f"({texts[0]} ^ {self.rep(mask(result_w))})"
        if op == "neg":
            ext = self.extend(texts[0], args[0].tpe, result_w)
            return (
                f"(({self.rep(1 << result_w)} - {ext}) & "
                f"{self.rep(mask(result_w))})"
            )
        if op in ("asUInt", "asSInt"):
            return texts[0]
        if op == "cat":
            lo_w = bit_width(args[1].tpe)
            return f"(({texts[0]} << {lo_w}) | {texts[1]})"
        if op == "bits":
            hi, lo = expr.consts
            if lo == 0:
                return f"({texts[0]} & {self.rep(mask(hi + 1))})"
            return f"(({texts[0]} >> {lo}) & {self.rep(mask(hi - lo + 1))})"
        if op == "head":
            (count,) = expr.consts
            shift = bit_width(args[0].tpe) - count
            return f"(({texts[0]} >> {shift}) & {self.rep(mask(count))})"
        if op == "tail":
            (count,) = expr.consts
            keep = bit_width(args[0].tpe) - count
            return f"({texts[0]} & {self.rep(mask(keep))})"
        if op == "shl":
            (count,) = expr.consts
            return texts[0] if count == 0 else f"({texts[0]} << {count})"
        if op == "shr":
            # unlike the scalar emitter a packed right shift drags the
            # next lane's low bits in, so the result is always masked
            (count,) = expr.consts
            width = bit_width(args[0].tpe)
            if count == 0:
                return texts[0]
            if count >= width:
                if is_signed(args[0].tpe):
                    return f"(({texts[0]} >> {width - 1}) & _R1)"
                return "0"
            return f"(({texts[0]} >> {count}) & {self.rep(mask(width - count))})"
        if op == "andr":
            width = bit_width(args[0].tpe)
            return f"(_nz({texts[0]} ^ {self.rep(mask(width))}) ^ _R1)"
        if op == "orr":
            return f"_nz({texts[0]})"
        if op == "pad":
            return self.extend(texts[0], args[0].tpe, result_w)
        raise TypeError(f"cannot generate swarm code for primop {op}")

    def _gen_compare(self, op: str, args, texts: list[str]) -> str:
        """Packed ordered compare via the SWAR borrow trick.

        Per lane, bit ``k`` of ``a + 2**k - b`` is set exactly when
        ``a >= b`` for ``k``-bit operands; signedness is handled by
        sign-extending to a common width and flipping the sign bit
        (mapping two's complement onto the same unsigned order).
        """
        k = max(bit_width(a.tpe) for a in args)
        if any(is_signed(a.tpe) for a in args):
            k += 1
            bias = self.rep(1 << (k - 1))
            exts = [
                f"({self.extend(t, a.tpe, k)} ^ {bias})"
                for t, a in zip(texts, args)
            ]
        else:
            exts = [
                self.extend(t, a.tpe, k) for t, a in zip(texts, args)
            ]
        if op in ("leq", "gt"):  # leq(a, b) == geq(b, a)
            exts.reverse()
        geq = f"((({exts[0]} + {self.rep(1 << k)} - {exts[1]}) >> {k}) & _R1)"
        if op in ("geq", "leq"):
            return geq
        return f"({geq} ^ _R1)"
