"""Shared execution model extracted from a flat, lowered circuit.

All software backends consume this: it normalizes a circuit into ports,
a topologically-ordered combinational plan, register/memory state elements,
and cover/stop effects with canonical coverage names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir.nodes import (
    Circuit,
    Connect,
    Cover,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    MemRead,
    Module,
    Port,
    Ref,
    Stop,
    When,
)
from ..ir.traversal import references, walk_expr, walk_stmts
from ..ir.types import ClockType, bit_width
from ..passes import CompileState, InlineInstances, PassError, lower
from ..passes.expand_whens import has_whens


@dataclass
class RegisterModel:
    """One register: next/reset/init expressions plus width and signedness."""

    name: str
    width: int
    signed: bool
    next: Expr
    reset: Optional[Expr]
    init: Optional[Expr]


@dataclass
class MemoryModel:
    """One memory: backing-store shape and its (possibly guarded) writes."""

    name: str
    width: int
    depth: int
    writes: list  # list of MemWrite

    @property
    def padded_depth(self) -> int:
        """Backing-store size: ``depth`` rounded up to a power of two.

        Addresses are masked to ``ceil(log2(depth))`` bits by allocation
        padding, so reads into the padded slots are in range (and return
        0 — writes are guarded to ``depth``).
        """
        if self.depth & (self.depth - 1):
            return 1 << self.depth.bit_length()
        return self.depth

    @property
    def needs_write_guard(self) -> bool:
        """Whether writes need an ``addr < depth`` guard.

        Only a non-power-of-two depth has padding slots a masked
        address can reach.
        """
        return self.padded_depth != self.depth


@dataclass
class CoverModel:
    """One cover statement: firing condition plus its two name forms."""

    name: str  # canonical hierarchical name
    local_name: str  # flat statement name
    pred: Expr
    en: Expr


@dataclass
class StopModel:
    """One stop statement: firing condition and the exit code it reports."""

    name: str
    pred: Expr
    en: Expr
    exit_code: int


@dataclass
class CircuitModel:
    """Everything a software simulator needs, in evaluation order."""

    name: str
    inputs: list[Port]
    outputs: list[Port]
    comb: list[tuple[str, Expr]]  # (signal name, expression) in topo order
    registers: list[RegisterModel]
    memories: list[MemoryModel]
    covers: list[CoverModel]
    stops: list[StopModel]
    widths: dict[str, int]
    cover_paths: dict[str, str]

    @property
    def port_names(self) -> set[str]:
        """All top-level port names, inputs and outputs alike."""
        return {p.name for p in self.inputs} | {p.name for p in self.outputs}


def build_model(circuit_or_state, already_lowered: bool = False) -> CircuitModel:
    """Flatten + lower a circuit (if needed) and extract the execution model."""
    if isinstance(circuit_or_state, CompileState):
        state = circuit_or_state
        needs_flatten = len(state.circuit.modules) > 1
        if needs_flatten:
            state = InlineInstances().run(state)
    else:
        circuit: Circuit = circuit_or_state
        if already_lowered and len(circuit.modules) == 1:
            state = CompileState(circuit)
        else:
            state = lower(circuit, flatten=True)
    module = state.circuit.top
    if has_whens(module):
        raise PassError("execution model requires low form (run ExpandWhens)")
    return _extract(module, state.cover_paths or {})


def _extract(module: Module, cover_paths: dict[str, str]) -> CircuitModel:
    registers: dict[str, DefRegister] = {}
    memories: dict[str, MemoryModel] = {}
    connects: dict[str, Connect] = {}
    nodes: dict[str, Expr] = {}
    covers: list[CoverModel] = []
    stops: list[StopModel] = []
    widths: dict[str, int] = {}

    for port in module.ports:
        widths[port.name] = 1 if isinstance(port.type, ClockType) else bit_width(port.type)

    for stmt in module.body:
        if isinstance(stmt, DefNode):
            nodes[stmt.name] = stmt.value
            widths[stmt.name] = bit_width(stmt.value.tpe)
        elif isinstance(stmt, DefWire):
            widths[stmt.name] = bit_width(stmt.type)
        elif isinstance(stmt, DefRegister):
            registers[stmt.name] = stmt
            widths[stmt.name] = bit_width(stmt.type)
        elif isinstance(stmt, DefMemory):
            memories[stmt.name] = MemoryModel(
                stmt.name, bit_width(stmt.data_type), stmt.depth, []
            )
        elif isinstance(stmt, Connect):
            assert isinstance(stmt.loc, Ref), "flat module cannot contain instance ports"
            connects[stmt.loc.name] = stmt
        elif isinstance(stmt, Cover):
            canonical = cover_paths.get(stmt.name, stmt.name)
            covers.append(CoverModel(canonical, stmt.name, stmt.pred, stmt.en))
        elif isinstance(stmt, Stop):
            canonical = cover_paths.get(stmt.name, stmt.name)
            stops.append(StopModel(canonical, stmt.pred, stmt.en, stmt.exit_code))
        elif isinstance(stmt, DefInstance):
            raise PassError("execution model requires a flattened circuit")
        else:
            from ..ir.nodes import MemWrite

            if isinstance(stmt, MemWrite):
                memories[stmt.mem].writes.append(stmt)
            else:
                raise PassError(f"unexpected statement {stmt!r}")

    # combinational assignments: nodes plus connects to wires/outputs
    comb_exprs: dict[str, Expr] = dict(nodes)
    for name, stmt in connects.items():
        if name not in registers:
            comb_exprs[name] = stmt.expr

    order = _topo_sort(comb_exprs, registers)

    reg_models = []
    for name, stmt in registers.items():
        connect = connects.get(name)
        next_expr: Expr = connect.expr if connect is not None else Ref(name, stmt.type)
        reg_models.append(
            RegisterModel(
                name,
                bit_width(stmt.type),
                _signed(stmt.type),
                next_expr,
                stmt.reset,
                stmt.init,
            )
        )

    inputs = [p for p in module.ports if p.direction == "input"]
    outputs = [p for p in module.ports if p.direction == "output"]
    return CircuitModel(
        name=module.name,
        inputs=inputs,
        outputs=outputs,
        comb=[(name, comb_exprs[name]) for name in order],
        registers=reg_models,
        memories=list(memories.values()),
        covers=covers,
        stops=stops,
        widths=widths,
        cover_paths=cover_paths,
    )


def _signed(tpe) -> bool:
    from ..ir.types import is_signed

    return is_signed(tpe)


def _topo_sort(comb: dict[str, Expr], registers: dict[str, DefRegister]) -> list[str]:
    """Order combinational signals so every dependency precedes its user."""
    deps: dict[str, list[str]] = {}
    for name, expr in comb.items():
        deps[name] = [d for d in set(references(expr)) if d in comb and d not in registers]

    order: list[str] = []
    done: set[str] = set()
    visiting: set[str] = set()
    for root in comb:
        if root in done:
            continue
        stack: list[tuple[str, int]] = [(root, 0)]
        visiting.add(root)
        while stack:
            name, idx = stack[-1]
            children = deps[name]
            if idx < len(children):
                stack[-1] = (name, idx + 1)
                child = children[idx]
                if child in done:
                    continue
                if child in visiting:
                    raise PassError(f"combinational cycle through {child!r}")
                visiting.add(child)
                stack.append((child, 0))
            else:
                stack.pop()
                visiting.discard(name)
                done.add(name)
                order.append(name)
    return order
