"""Content-addressed compiled-model cache: compile once, run many.

The process-isolated executor re-runs a job's ``make_sim`` factory on
every forked attempt, the differential runner compiles the same circuit
once per voting leg, and a resumed campaign recompiles everything it
already compiled yesterday.  For the compiled backends that redundant
work — lowering, model extraction, code generation — dominates campaign
wall clock on small designs.  This module removes it:

* **key** — a stable SHA-256 over the printed circuit IR (plus the
  flattening pass's canonical cover paths), the backend name, the
  :data:`~repro.backends.pycodegen.CODEGEN_VERSION`, and every
  compile-affecting option (counter width, value probes, JIT mode).
  Identical instrumented circuits hash identically regardless of which
  process or host built them; *any* change to the codegen contract is a
  version bump that invalidates every entry at once.
* **value** — the generated Python source plus the pickled
  :class:`~repro.backends.model.CircuitModel`, persisted on disk with
  the same atomic write-then-rename discipline as checkpoint shards,
  fronted by an in-process LRU.  Transient per-process artifacts (the
  ``exec``'d module class, compiled JIT closures) are memoized on the
  in-memory entry only — they are never pickled.
* **fork-safety** — the in-process LRU is populated *before* the
  executor forks its workers, so every child inherits warm entries via
  copy-on-write and compiles nothing; the disk tier covers fresh
  processes (a second CLI invocation, a resumed campaign).  Cache files
  are only ever replaced atomically, so concurrent readers see either
  the old entry or the new one, never a torn write.

A corrupted or truncated cache file is treated as a miss: the model is
recompiled and the entry silently overwritten — the cache can only ever
cost a recompile, never a crash or a wrong simulation.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from ..ir.nodes import Circuit
from ..ir.printer import print_circuit
from ..runtime.telemetry import obs
from .pycodegen import CODEGEN_VERSION

#: cache file format version (the *container*, not the generated code)
CACHE_FORMAT_VERSION = 1

CACHE_SUFFIX = ".model.pkl"


def circuit_fingerprint(circuit_or_state) -> str:
    """A stable hex digest of a circuit (or CompileState) identity.

    Hashes the printed IR — the printer is deterministic and
    round-trippable, so structurally identical circuits fingerprint
    identically across processes — plus the canonical cover-path map a
    :class:`~repro.passes.CompileState` may carry (two states with the
    same flat circuit but different hierarchical cover names must not
    share compiled cover tables).
    """
    hasher = hashlib.sha256()
    circuit = getattr(circuit_or_state, "circuit", circuit_or_state)
    if not isinstance(circuit, Circuit):
        raise TypeError(f"cannot fingerprint {circuit_or_state!r}")
    hasher.update(print_circuit(circuit).encode())
    cover_paths = getattr(circuit_or_state, "cover_paths", None)
    if cover_paths:
        for local, canonical in sorted(cover_paths.items()):
            hasher.update(f"\x00{local}\x01{canonical}".encode())
    return hasher.hexdigest()


def cache_key(
    circuit_or_state,
    backend: str,
    counter_width: Optional[int] = None,
    options: tuple = (),
) -> str:
    """The full content-addressed cache key for one compile request.

    ``options`` carries any further compile-affecting knobs (value-probe
    tuples, JIT mode, ...) — anything that changes the generated source
    must be in the key or two different compiles would collide.

    The cover-minimizer version is part of the key: a minimized circuit
    already fingerprints differently from the full one, but two *tool*
    versions may derive different bases for the same circuit text, and a
    stale cached model would then report the wrong counter set.
    """
    from ..analysis.implication import MINIMIZER_VERSION

    tail = (
        f"{backend}|cg{CODEGEN_VERSION}|mv{MINIMIZER_VERSION}"
        f"|cw{counter_width}|{options!r}"
    )
    hasher = hashlib.sha256()
    hasher.update(circuit_fingerprint(circuit_or_state).encode())
    hasher.update(tail.encode())
    return hasher.hexdigest()


@dataclass
class CacheEntry:
    """One compiled model: persisted payload + per-process memoization.

    ``model`` and ``source`` survive pickling to disk; ``runtime`` is a
    per-process scratch dict (exec'd classes, compiled closures) that is
    deliberately dropped on serialization — code objects do not pickle
    portably across interpreter versions.
    """

    key: str
    backend: str
    model: Any  # CircuitModel
    source: Optional[str] = None
    codegen_version: int = CODEGEN_VERSION
    runtime: dict = field(default_factory=dict, compare=False, repr=False)

    def payload(self) -> dict:
        """The picklable on-disk form (runtime objects excluded)."""
        return {
            "format": CACHE_FORMAT_VERSION,
            "codegen_version": self.codegen_version,
            "key": self.key,
            "backend": self.backend,
            "source": self.source,
            "model": self.model,
        }


class ModelCache:
    """A two-tier (memory LRU + optional disk) compiled-model cache.

    ``directory=None`` gives a memory-only cache (still useful: forked
    workers inherit it).  ``max_entries`` bounds the in-process tier —
    evicted entries remain on disk.  All operations are thread-safe; the
    instance-level ``hits``/``misses`` counters back direct assertions
    while the ``repro_model_cache_{hits,misses}_total`` metrics feed
    campaign telemetry (and are forwarded from forked workers).
    """

    def __init__(self, directory=None, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._lru: OrderedDict[str, CacheEntry] = OrderedDict()
        self._lock = threading.RLock()

    # -- lookup ----------------------------------------------------------------

    def get_or_build(
        self, key: str, backend: str, build: Callable[[], CacheEntry]
    ) -> CacheEntry:
        """The entry for ``key``, compiling via ``build()`` on a miss.

        Hit order: in-process LRU, then disk.  A disk entry whose format
        or codegen version (or recorded key/backend) does not match is a
        miss and gets overwritten by the fresh compile.
        """
        started = time.perf_counter()
        with self._lock:
            entry = self._lru.get(key)
            if entry is not None:
                self._lru.move_to_end(key)
                self._record_hit(backend, started)
                return entry
            entry = self._load_disk(key, backend)
            if entry is not None:
                self._remember(entry)
                self._record_hit(backend, started)
                return entry
            self.misses += 1
            if obs.enabled:
                obs.inc("repro_model_cache_misses_total", backend=backend)
            entry = build()
            entry.key = key
            entry.backend = backend
            self._remember(entry)
            self._store_disk(entry)
            return entry

    def contains(self, key: str) -> bool:
        """Whether ``key`` is resident in memory or readable from disk."""
        with self._lock:
            if key in self._lru:
                return True
            return self._load_disk(key, backend=None) is not None

    def clear_memory(self) -> None:
        """Drop the in-process tier (disk entries survive).

        Lets tests measure the warm-from-disk path explicitly.
        """
        with self._lock:
            self._lru.clear()

    def entry_path(self, key: str) -> Optional[Path]:
        """Where ``key`` persists on disk (None for memory-only caches)."""
        if self.directory is None:
            return None
        return self.directory / f"{key}{CACHE_SUFFIX}"

    # -- internals -------------------------------------------------------------

    def _record_hit(self, backend: str, started: float) -> None:
        self.hits += 1
        if obs.enabled:
            obs.inc("repro_model_cache_hits_total", backend=backend)
            # The span a compile would have occupied, shrunk to the
            # cache-lookup time — makes skipped compiles visible (and
            # countable) on the trace timeline.
            obs.tracer.record(
                "compile-skipped", "compile", started, time.perf_counter(),
                backend=backend,
            )

    def _remember(self, entry: CacheEntry) -> None:
        self._lru[entry.key] = entry
        self._lru.move_to_end(entry.key)
        while len(self._lru) > self.max_entries:
            self._lru.popitem(last=False)

    def _load_disk(self, key: str, backend: Optional[str]) -> Optional[CacheEntry]:
        path = self.entry_path(key)
        if path is None or not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception:
            # Truncated, garbage, or unpicklable: a miss, never a crash.
            # The fresh compile overwrites the bad file atomically.
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("format") != CACHE_FORMAT_VERSION:
            return None
        if payload.get("codegen_version") != CODEGEN_VERSION:
            return None  # stale generated-code contract: recompile
        if payload.get("key") != key:
            return None  # renamed/copied file: content no longer addressed
        if backend is not None and payload.get("backend") != backend:
            return None
        return CacheEntry(
            key=payload["key"],
            backend=payload["backend"],
            model=payload["model"],
            source=payload.get("source"),
            codegen_version=payload["codegen_version"],
        )

    def _store_disk(self, entry: CacheEntry) -> None:
        path = self.entry_path(entry.key)
        if path is None:
            return
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry.payload(), handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# -- process-wide default cache -------------------------------------------------

_default_cache: Optional[ModelCache] = None


def set_default_cache(cache: Optional[ModelCache]) -> Optional[ModelCache]:
    """Install (or clear, with None) the process-wide default cache.

    Backends constructed without an explicit ``cache=`` consult this, so
    one CLI flag (``--model-cache-dir``) turns on caching for every
    backend a campaign builds — including the copies forked workers
    inherit.  Returns the previous default so callers can restore it.
    """
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


def default_cache() -> Optional[ModelCache]:
    """The process-wide default cache, or None when caching is off."""
    return _default_cache


def resolve_cache(explicit: Optional[ModelCache]) -> Optional[ModelCache]:
    """The cache a backend should use: explicit wins, else the default."""
    return explicit if explicit is not None else _default_cache


def compile_cached(
    circuit_or_state,
    backend: str,
    build: Callable[[], CacheEntry],
    cache: Optional[ModelCache] = None,
    counter_width: Optional[int] = None,
    options: tuple = (),
) -> CacheEntry:
    """The one compile-request path every software backend shares.

    Resolves the effective cache (explicit, else the process default);
    with no cache configured this is exactly a fresh ``build()`` — the
    pre-cache behavior, entry-shaped.

    The cache key is content-addressed over the printed circuit,
    ``backend`` name, ``counter_width``, and ``options`` — backends put
    every input that changes their generated artifact into ``options``
    (the c backend includes its emitter version *and* ``cc --version``,
    so a compiler upgrade misses instead of loading a stale ``.so``).
    ``build`` runs at most once per key per process; concurrent
    processes may race to build the same key, which is safe because
    entries are written atomically and are bit-identical by
    construction.  Raises whatever ``build()`` raises on a miss; never
    raises on a hit.
    """
    effective = resolve_cache(cache)
    if effective is None:
        return build()
    key = cache_key(circuit_or_state, backend, counter_width, options)
    return effective.get_or_build(key, backend, build)
