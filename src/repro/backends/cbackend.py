"""Native C backend: compile the settle schedule to a shared object.

The portable JIT (:mod:`repro.backends.treadle`) recovered ~56x over the
tree-walking interpreter while staying pure Python; this backend takes
the remaining headroom the ROADMAP identifies by emitting C99 from the
*same* lowered :class:`~repro.backends.model.CircuitModel`, shelling out
to a system C compiler (``cc -O2 -shared -fPIC``), and loading the
artifact through :mod:`ctypes` behind a small, stable ABI:

================================== ==========================================
symbol                             role
================================== ==========================================
``repro_create`` / ``repro_destroy``  allocate / free one simulation state
``repro_reset``                    zero all architectural state and counters
``repro_settle``                   one combinational sweep (before peeks)
``repro_step(s, n)``               run ``n`` rising edges, return cycles done
``repro_halted``                   fired stop index, or -1 while running
``repro_poke`` / ``repro_peek``    write an input / read any signal by index
``repro_read_covers``              copy the raw 64-bit cover counters out
``repro_abi_version`` & friends    load-time sanity checks on the artifact
================================== ==========================================

Semantics mirror :mod:`repro.backends.pycodegen` exactly: every generated
sub-expression is the operand's *raw masked bit pattern* held in one
unsigned machine word (``uint64_t``, or ``__uint128_t`` when any
intermediate expression exceeds 64 bits), and signed interpretation is a
local inline sign-extension.  Truncating division/remainder, guarded
dynamic shifts (shifting by >= the word width is undefined behaviour in
C), and the register re-encode on commit all reproduce the interpreter's
behaviour bit-for-bit — the hypothesis parity suite pins this backend
against the interpreter the same way it pins the JIT.

Builds are keyed through the content-addressed model cache: the cache key
covers the emitted C (via the circuit fingerprint + ``CODEGEN_VERSION`` +
:data:`C_EMITTER_VERSION`) *and* the identity of the discovered compiler
(first line of ``cc --version``), so a toolchain upgrade invalidates
stale ``.so`` artifacts instead of silently reusing them.  The ``.so``
lives next to the pickled model entry (``<key>.so``) and is rebuilt from
the cached C source whenever it is missing, truncated, or fails its
load-time ABI checks.

When no C compiler is on ``PATH`` (or a circuit needs arithmetic wider
than 128 bits), :meth:`CBackend.compile` degrades gracefully to the
Treadle JIT tier with a single warning and a
``repro_backend_fallback_total`` metric increment — campaigns keep
running, just slower.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings
from functools import lru_cache
from pathlib import Path
from typing import Optional

from ..ir.nodes import Expr, MemRead, Mux, PrimOp, Ref, SIntLiteral, UIntLiteral
from ..ir.traversal import walk_expr
from ..ir.types import bit_width, is_signed, mask
from ..runtime.telemetry import StepMeter, obs
from .api import CoverCounts, StepResult, metered_step, saturate
from .model import CircuitModel, MemoryModel, build_model
from .modelcache import CacheEntry, ModelCache, compile_cached, resolve_cache
from .pycodegen import CodeBuilder, pynames
from .treadle import TreadleBackend

#: Version of the C emitter's output contract.  Mixed into the cache-key
#: options, so any change to the emitted C invalidates cached artifacts
#: without having to bump the repo-wide ``CODEGEN_VERSION``.
C_EMITTER_VERSION = 1

#: Version stamped into (and checked out of) every generated artifact.
C_ABI_VERSION = 1

#: Every value crosses the ABI as this many little-endian 64-bit words,
#: regardless of the model's word width — peek/poke are not hot paths.
VALUE_WORDS = 2

#: compiler discovery order (first hit on PATH wins)
COMPILER_CANDIDATES = ("cc", "gcc", "clang")

#: flags for the shared-object build
CFLAGS = ("-O2", "-shared", "-fPIC", "-std=c99")

SO_SUFFIX = ".so"

_U64_MASK = (1 << 64) - 1


class CBackendError(RuntimeError):
    """The native toolchain failed (compile error, bad artifact)."""


class CUnsupportedCircuit(Exception):
    """The circuit needs arithmetic wider than the emitter supports."""


# -- compiler discovery ---------------------------------------------------------


def find_compiler() -> Optional[str]:
    """The first C compiler on PATH (``cc``, ``gcc``, ``clang``), or None.

    Resolution happens at compile time, never at import time, so adding a
    compiler to the environment takes effect without a restart and tests
    can fake its absence by monkeypatching ``shutil.which``.
    """
    for name in COMPILER_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


@lru_cache(maxsize=8)
def compiler_id(path: str) -> str:
    """A stable identity string for the compiler at ``path``.

    The first line of ``<path> --version`` (e.g. ``cc (Debian 12.2.0-14)
    12.2.0``).  Mixed into the model-cache key so entries and ``.so``
    artifacts built by one toolchain are never reused after an upgrade —
    codegen bugs fixed by a new compiler must not survive in the cache.
    """
    try:
        proc = subprocess.run(
            [path, "--version"], capture_output=True, text=True, timeout=10
        )
        text = (proc.stdout or proc.stderr or "").strip()
    except (OSError, subprocess.SubprocessError):
        return f"unknown:{path}"
    first = text.splitlines()[0].strip() if text else ""
    return first or f"unknown:{path}"


# -- C code generation ----------------------------------------------------------


def _model_exprs(model: CircuitModel):
    for _, expr in model.comb:
        yield expr
    for reg in model.registers:
        yield reg.next
        if reg.reset is not None:
            yield reg.reset
        if reg.init is not None:
            yield reg.init
    for cover in model.covers:
        yield cover.pred
        yield cover.en
    for stop in model.stops:
        yield stop.pred
        yield stop.en
    for memory in model.memories:
        for write in memory.writes:
            yield write.addr
            yield write.data
            yield write.en


def word_width(model: CircuitModel) -> int:
    """The machine word width (64 or 128) needed to hold every value.

    Raw masked values fit their expression's own bit width, so the widest
    *sub-expression* anywhere in the model bounds the required word.
    Raises :class:`CUnsupportedCircuit` past 128 bits — the caller falls
    back to the (arbitrary-precision) JIT tier rather than miscompute.
    """
    widest = 1
    for root in _model_exprs(model):
        for node in walk_expr(root):
            widest = max(widest, bit_width(node.tpe))
    for width in model.widths.values():
        widest = max(widest, width)
    for memory in model.memories:
        widest = max(widest, memory.width)
    if widest <= 64:
        return 64
    if widest <= 128:
        return 128
    raise CUnsupportedCircuit(
        f"widest intermediate value is {widest} bits (limit: 128)"
    )


def signal_names(model: CircuitModel) -> list[str]:
    """The canonical peek/poke index order: inputs, registers, comb."""
    return (
        [p.name for p in model.inputs]
        + [r.name for r in model.registers]
        + [name for name, _ in model.comb]
    )


class _CExprGen:
    """Expression generator mirroring :func:`pycodegen.gen_expr` in C.

    Invariant (same as the Python generator): every emitted C expression
    has type ``uN`` and evaluates to the raw non-negative bit pattern,
    already truncated to the expression's width.  Sign interpretation is
    a local inline sign-extension into ``sN``.
    """

    def __init__(self, width: int, ref, mem, memories: dict[str, MemoryModel]):
        self.W = width
        self.ref = ref
        self.mem = mem
        self.memories = memories

    # -- literal / helper emission ------------------------------------------

    def lit(self, value: int) -> str:
        if self.W == 64:
            return f"UINT64_C(0x{value:x})"
        if value <= _U64_MASK:
            return f"((uN)UINT64_C(0x{value:x}))"
        hi, lo = value >> 64, value & _U64_MASK
        return f"((((uN)UINT64_C(0x{hi:x})) << 64) | (uN)UINT64_C(0x{lo:x}))"

    def m(self, text: str, width: int) -> str:
        """Truncate ``text`` to ``width`` bits (no-op at full word width)."""
        if width >= self.W:
            return text
        return f"(({text}) & {self.lit(mask(width))})"

    def sx(self, text: str, width: int) -> str:
        """Sign-extend a raw ``width``-bit value into an ``sN`` (inline)."""
        shift = self.W - width
        if shift == 0:
            return f"((sN)({text}))"
        return f"((sN)((uN)({text}) << {shift}) >> {shift})"

    def _signed_operand(self, expr: Expr, text: str) -> str:
        """``expr``'s numeric value as an ``sN`` (for cmp/div/rem)."""
        w = bit_width(expr.tpe)
        if is_signed(expr.tpe):
            return self.sx(text, w)
        if w >= self.W:
            raise CUnsupportedCircuit(
                f"{self.W}-bit unsigned operand in a signed context"
            )
        return f"((sN)({text}))"

    def ext(self, expr: Expr, text: str) -> str:
        """``expr``'s value as a ``uN``, sign-extended to the full word.

        For the modular ops (add/sub/mul/bitwise) sign extension to W
        bits followed by a result mask is exactly Python's arbitrary-
        precision signed arithmetic followed by the same mask.
        """
        if is_signed(expr.tpe):
            return f"((uN){self.sx(text, bit_width(expr.tpe))})"
        return text

    # -- expression dispatch -------------------------------------------------

    def gen(self, expr: Expr) -> str:
        if isinstance(expr, Ref):
            return self.ref(expr.name)
        if isinstance(expr, UIntLiteral):
            return self.lit(expr.value)
        if isinstance(expr, SIntLiteral):
            return self.lit(expr.value & mask(expr.width))
        if isinstance(expr, Mux):
            cond = self.gen(expr.cond)
            width = bit_width(expr.type)
            arms = []
            for arm in (expr.tval, expr.fval):
                text = self.gen(arm)
                if is_signed(arm.tpe) and bit_width(arm.tpe) < width:
                    text = self.m(
                        f"((uN){self.sx(text, bit_width(arm.tpe))})", width
                    )
                arms.append(text)
            return f"(({cond}) ? ({arms[0]}) : ({arms[1]}))"
        if isinstance(expr, MemRead):
            addr = self.gen(expr.addr)
            memory = self.memories[expr.mem]
            index = self.m(addr, memory.padded_depth.bit_length() - 1)
            return f"{self.mem(expr.mem)}[(size_t)({index})]"
        if isinstance(expr, PrimOp):
            return self._primop(expr)
        raise TypeError(f"cannot generate C for {expr!r}")

    def _primop(self, expr: PrimOp) -> str:
        op = expr.op
        args = expr.args
        texts = [self.gen(a) for a in args]
        result_w = bit_width(expr.type)

        if op in ("add", "sub", "mul"):
            symbol = {"add": "+", "sub": "-", "mul": "*"}[op]
            a, b = self.ext(args[0], texts[0]), self.ext(args[1], texts[1])
            return self.m(f"({a} {symbol} {b})", result_w)
        if op in ("div", "rem"):
            if is_signed(args[0].tpe) or is_signed(args[1].tpe):
                a = self._signed_operand(args[0], texts[0])
                b = self._signed_operand(args[1], texts[1])
                fn = "_sdiv" if op == "div" else "_srem"
                return self.m(f"((uN){fn}({a}, {b}))", result_w)
            fn = "_udiv" if op == "div" else "_urem"
            return self.m(f"{fn}({texts[0]}, {texts[1]})", result_w)
        if op in ("lt", "leq", "gt", "geq", "eq", "neq"):
            symbol = {"lt": "<", "leq": "<=", "gt": ">", "geq": ">=",
                      "eq": "==", "neq": "!="}[op]
            if is_signed(args[0].tpe) or is_signed(args[1].tpe):
                a = self._signed_operand(args[0], texts[0])
                b = self._signed_operand(args[1], texts[1])
            else:
                a, b = texts[0], texts[1]
            return f"((uN)(({a}) {symbol} ({b})))"
        if op in ("and", "or", "xor"):
            symbol = {"and": "&", "or": "|", "xor": "^"}[op]
            a, b = self.ext(args[0], texts[0]), self.ext(args[1], texts[1])
            return self.m(f"({a} {symbol} {b})", result_w)
        if op == "not":
            return self.m(f"(~{self.ext(args[0], texts[0])})", result_w)
        if op == "neg":
            return self.m(f"((uN)0 - {self.ext(args[0], texts[0])})", result_w)
        if op in ("asUInt", "asSInt"):
            return texts[0]
        if op == "cat":
            lo_w = bit_width(args[1].tpe)
            return f"(({texts[0]} << {lo_w}) | {texts[1]})"
        if op == "bits":
            hi, lo = expr.consts
            if lo == 0:
                return self.m(texts[0], hi + 1)
            return self.m(f"({texts[0]} >> {lo})", hi - lo + 1)
        if op == "head":
            (count,) = expr.consts
            shift = bit_width(args[0].tpe) - count
            return self.m(f"({texts[0]} >> {shift})", count)
        if op == "tail":
            (count,) = expr.consts
            return self.m(texts[0], bit_width(args[0].tpe) - count)
        if op == "shl":
            (count,) = expr.consts
            return f"({texts[0]} << {count})"
        if op == "shr":
            (count,) = expr.consts
            w = bit_width(args[0].tpe)
            if is_signed(args[0].tpe):
                shifted = f"({self.sx(texts[0], w)} >> {min(count, self.W - 1)})"
                return self.m(f"((uN){shifted})", result_w)
            if count >= w:
                return self.lit(0)
            return f"({texts[0]} >> {count})"
        if op == "dshl":
            if is_signed(args[0].tpe):
                raw = f"(((uN){self.sx(texts[0], bit_width(args[0].tpe))}) << {texts[1]})"
                return self.m(raw, result_w)
            return f"({texts[0]} << {texts[1]})"
        if op == "dshr":
            if is_signed(args[0].tpe):
                sx = self.sx(texts[0], bit_width(args[0].tpe))
                return self.m(f"((uN)_sshr({sx}, {texts[1]}))", result_w)
            return f"_ushr({texts[0]}, {texts[1]})"
        if op == "andr":
            full = self.lit(mask(bit_width(args[0].tpe)))
            return f"((uN)({texts[0]} == {full}))"
        if op == "orr":
            return f"((uN)({texts[0]} != (uN)0))"
        if op == "xorr":
            return f"_xorr({texts[0]})"
        if op == "pad":
            w = bit_width(args[0].tpe)
            if is_signed(args[0].tpe) and w < result_w:
                return self.m(f"((uN){self.sx(texts[0], w)})", result_w)
            return texts[0]
        raise TypeError(f"cannot generate C for primop {op}")

    def fit(self, text: str, tpe, width: int) -> str:
        """Re-encode an expression's raw value into a ``width``-bit register.

        Mirrors the JIT's ``_fit``: narrower signed sources sign-extend,
        wider sources truncate, matching widths pass through untouched.
        """
        w = bit_width(tpe)
        if is_signed(tpe) and w < width:
            return self.m(f"((uN){self.sx(text, w)})", width)
        if w > width:
            return self.m(text, width)
        return text

    def predicate(self, pred: Expr, en: Expr) -> str:
        """A cover/stop firing condition, dropping a constant-true enable."""
        pred_text = self.gen(pred)
        if isinstance(en, UIntLiteral) and en.value == 1:
            return pred_text
        return f"({self.gen(en)}) && ({pred_text})"


_HELPERS_64 = """\
typedef uint64_t uN;
typedef int64_t sN;
#define WBITS 64
static inline uN _xorr(uN x) {
    return (uN)(__builtin_popcountll((unsigned long long)x) & 1);
}
"""

_HELPERS_128 = """\
typedef __uint128_t uN;
typedef __int128_t sN;
#define WBITS 128
static inline uN _xorr(uN x) {
    int bits = __builtin_popcountll((unsigned long long)(x >> 64))
             + __builtin_popcountll((unsigned long long)x);
    return (uN)(bits & 1);
}
"""

_HELPERS_COMMON = """\
static inline uN _udiv(uN a, uN b) { return b ? a / b : (uN)0; }
static inline uN _urem(uN a, uN b) { return b ? a % b : a; }
static inline sN _sdiv(sN a, sN b) { return b ? a / b : (sN)0; }
static inline sN _srem(sN a, sN b) {
    if (b == 0) return a;
    if (b == (sN)-1) return (sN)0; /* avoid the INT_MIN % -1 trap */
    return a % b;
}
static inline uN _ushr(uN x, uN s) { return s >= (uN)WBITS ? (uN)0 : x >> s; }
static inline sN _sshr(sN x, uN s) {
    return x >> (unsigned)(s > (uN)(WBITS - 1) ? (uN)(WBITS - 1) : s);
}
"""


def generate_c_source(model: CircuitModel) -> str:
    """Emit the complete C99 translation unit for ``model``.

    One ``state_t`` struct holds every signal (inputs, registers, and —
    refreshed by ``repro_settle`` — combinational values), the memories,
    the raw 64-bit cover counters, and the fired-stop index.  The hot
    ``repro_step`` loop keeps register state in locals and only touches
    the struct for covers/stops/memories, mirroring the fused JIT loop.

    Raises :class:`CUnsupportedCircuit` when any intermediate value
    exceeds 128 bits.
    """
    W = word_width(model)
    names = signal_names(model)
    ids = pynames(names)
    mem_ids = {m.name: f"m_{i}" for i, m in enumerate(model.memories)}
    memories = {m.name: m for m in model.memories}
    n_covers = len(model.covers)

    b = CodeBuilder()
    b.emit("/* Generated by repro.backends.cbackend -- do not edit. */")
    b.emit(f"/* model: {model.name}  word: {W} bits  abi: {C_ABI_VERSION} */")
    b.emit("#include <stdint.h>")
    b.emit("#include <stdlib.h>")
    b.emit("#include <string.h>")
    b.emit("#include <stddef.h>")
    b.emit()
    for line in (_HELPERS_64 if W == 64 else _HELPERS_128).splitlines():
        b.emit(line)
    for line in _HELPERS_COMMON.splitlines():
        b.emit(line)
    b.emit()

    # -- state struct -------------------------------------------------------
    b.emit("typedef struct {")
    b.depth += 1
    for name in names:
        b.emit(f"uN {ids[name]};")
    for memory in model.memories:
        b.emit(f"uN {mem_ids[memory.name]}[{memory.padded_depth}];")
    b.emit(f"uint64_t covers[{max(1, n_covers)}];")
    b.emit("int32_t halted;")
    b.depth -= 1
    b.emit("} state_t;")
    b.emit()

    # -- lifecycle ----------------------------------------------------------
    b.emit("void* repro_create(void) {")
    b.depth += 1
    b.emit("state_t* s = (state_t*)calloc(1, sizeof(state_t));")
    b.emit("if (s) s->halted = -1;")
    b.emit("return (void*)s;")
    b.depth -= 1
    b.emit("}")
    b.emit()
    b.emit("void repro_destroy(void* p) { free(p); }")
    b.emit()
    b.emit("void repro_reset(void* p) {")
    b.depth += 1
    b.emit("state_t* s = (state_t*)p;")
    b.emit("memset(s, 0, sizeof(state_t));")
    b.emit("s->halted = -1;")
    b.depth -= 1
    b.emit("}")
    b.emit()

    # -- settle: one combinational sweep into the struct --------------------
    struct_gen = _CExprGen(
        W, lambda n: f"s->{ids[n]}", lambda n: f"s->{mem_ids[n]}", memories
    )
    b.emit("void repro_settle(void* p) {")
    b.depth += 1
    b.emit("state_t* s = (state_t*)p;")
    if not model.comb:
        b.emit("(void)s;")
    for name, expr in model.comb:
        b.emit(f"s->{ids[name]} = {struct_gen.gen(expr)};")
    b.depth -= 1
    b.emit("}")
    b.emit()

    # -- step: the fused hot loop -------------------------------------------
    local_gen = _CExprGen(W, lambda n: ids[n], lambda n: mem_ids[n], memories)
    b.emit("uint64_t repro_step(void* p, uint64_t cycles) {")
    b.depth += 1
    b.emit("state_t* s = (state_t*)p;")
    b.emit("if (s->halted >= 0) return 0;")
    for port in model.inputs:
        b.emit(f"const uN {ids[port.name]} = s->{ids[port.name]};")
    for reg in model.registers:
        b.emit(f"uN {ids[reg.name]} = s->{ids[reg.name]};")
    for memory in model.memories:
        b.emit(
            f"uN * const {mem_ids[memory.name]} = s->{mem_ids[memory.name]};"
        )
    if n_covers:
        b.emit("uint64_t * const cov = s->covers;")
    b.emit("uint64_t done = 0;")
    b.emit("uint64_t i;")
    b.emit("for (i = 0; i < cycles; i++) {")
    b.depth += 1
    for name, expr in model.comb:
        b.emit(f"const uN {ids[name]} = {local_gen.gen(expr)};")
    for index, cover in enumerate(model.covers):
        b.emit(f"if ({local_gen.predicate(cover.pred, cover.en)}) {{")
        b.depth += 1
        b.emit(f"cov[{index}] += 1;")
        b.depth -= 1
        b.emit("}")
    keyword = "if"
    for index, stop in enumerate(model.stops):
        b.emit(f"{keyword} ({local_gen.predicate(stop.pred, stop.en)}) {{")
        b.depth += 1
        b.emit(f"s->halted = {index};")
        b.depth -= 1
        b.emit("}")
        keyword = "else if"
    for i, reg in enumerate(model.registers):
        next_text = local_gen.fit(
            local_gen.gen(reg.next), reg.next.tpe, reg.width
        )
        if reg.reset is not None and reg.init is not None:
            init_text = local_gen.fit(
                local_gen.gen(reg.init), reg.init.tpe, reg.width
            )
            cond = local_gen.gen(reg.reset)
            b.emit(f"const uN n_{i} = ({cond}) ? ({init_text}) : ({next_text});")
        else:
            b.emit(f"const uN n_{i} = {next_text};")
    for memory in model.memories:
        pad_bits = memory.padded_depth.bit_length() - 1
        for write in memory.writes:
            addr = local_gen.gen(write.addr)
            data = local_gen.m(local_gen.gen(write.data), memory.width)
            en = local_gen.gen(write.en)
            guard = (
                f"({en}) && (({addr}) < {local_gen.lit(memory.depth)})"
                if memory.needs_write_guard
                else en
            )
            index = local_gen.m(addr, pad_bits)
            b.emit(f"if ({guard}) {{")
            b.depth += 1
            b.emit(f"{mem_ids[memory.name]}[(size_t)({index})] = {data};")
            b.depth -= 1
            b.emit("}")
    for i, reg in enumerate(model.registers):
        b.emit(f"{ids[reg.name]} = n_{i};")
    b.emit("done += 1;")
    if model.stops:
        b.emit("if (s->halted >= 0) break;")
    b.depth -= 1
    b.emit("}")
    for reg in model.registers:
        b.emit(f"s->{ids[reg.name]} = {ids[reg.name]};")
    b.emit("return done;")
    b.depth -= 1
    b.emit("}")
    b.emit()

    b.emit("int32_t repro_halted(void* p) { return ((state_t*)p)->halted; }")
    b.emit()

    # -- poke: inputs only, value pre-masked to the port width --------------
    b.emit("void repro_poke(void* p, uint32_t idx, const uint64_t* in) {")
    b.depth += 1
    b.emit("state_t* s = (state_t*)p;")
    if W == 64:
        b.emit("const uN x = (uN)in[0];")
    else:
        b.emit("const uN x = (uN)in[0] | ((uN)in[1] << 64);")
    b.emit("switch (idx) {")
    b.depth += 1
    for index, port in enumerate(model.inputs):
        masked = struct_gen.m("x", model.widths[port.name])
        b.emit(f"case {index}: s->{ids[port.name]} = {masked}; break;")
    b.emit("default: break;")
    b.depth -= 1
    b.emit("}")
    b.depth -= 1
    b.emit("}")
    b.emit()

    # -- peek: any signal (comb values valid after repro_settle) ------------
    b.emit("void repro_peek(void* p, uint32_t idx, uint64_t* out) {")
    b.depth += 1
    b.emit("state_t* s = (state_t*)p;")
    b.emit("uN x = (uN)0;")
    b.emit("switch (idx) {")
    b.depth += 1
    for index, name in enumerate(names):
        b.emit(f"case {index}: x = s->{ids[name]}; break;")
    b.emit("default: break;")
    b.depth -= 1
    b.emit("}")
    b.emit("out[0] = (uint64_t)x;")
    if W == 64:
        b.emit("out[1] = 0;")
    else:
        b.emit("out[1] = (uint64_t)(x >> 64);")
    b.depth -= 1
    b.emit("}")
    b.emit()

    b.emit("void repro_read_covers(void* p, uint64_t* out) {")
    b.depth += 1
    b.emit("state_t* s = (state_t*)p;")
    if n_covers:
        b.emit(f"memcpy(out, s->covers, {n_covers} * sizeof(uint64_t));")
    else:
        b.emit("(void)s; (void)out;")
    b.depth -= 1
    b.emit("}")
    b.emit()

    # -- load-time sanity checks --------------------------------------------
    b.emit(f"uint32_t repro_abi_version(void) {{ return {C_ABI_VERSION}u; }}")
    b.emit(f"uint32_t repro_num_signals(void) {{ return {len(names)}u; }}")
    b.emit(f"uint32_t repro_num_covers(void) {{ return {n_covers}u; }}")
    b.emit(f"uint32_t repro_value_words(void) {{ return {VALUE_WORDS}u; }}")
    b.emit(f"uint32_t repro_word_bits(void) {{ return {W}u; }}")
    return b.source()


# -- shared-object build & load -------------------------------------------------

_SCRATCH: Optional[Path] = None


def _scratch_dir() -> Path:
    """Per-process artifact directory for cache-less builds."""
    global _SCRATCH
    if _SCRATCH is None:
        _SCRATCH = Path(tempfile.mkdtemp(prefix="repro-cbackend-"))
    return _SCRATCH


def _digest_path(so_path: Path) -> Path:
    return so_path.with_name(so_path.name + ".sha256")


def artifact_ok(so_path: Path) -> bool:
    """Whether a cached ``.so`` matches its sha256 sidecar.

    ``dlopen`` of a truncated ELF does not fail cleanly — glibc maps
    segments straight past end-of-file and the process dies with SIGBUS
    on first touch.  To keep the cache's "corruption can only ever cost
    a recompile, never a crash" contract for native artifacts, every
    build records a ``<key>.so.sha256`` sidecar and the loader refuses
    to ``dlopen`` any artifact whose bytes no longer match it.
    """
    try:
        expected = _digest_path(so_path).read_text().strip()
        actual = hashlib.sha256(so_path.read_bytes()).hexdigest()
    except OSError:
        return False
    return expected == actual


def build_shared_object(source: str, cc: str, out_path: Path) -> None:
    """Compile ``source`` with ``cc`` and atomically install ``out_path``.

    The object is built under a temporary name in the destination
    directory and ``os.replace``d into place, so concurrent processes
    racing on the same cache slot see either the old artifact or the new
    one — never a torn ``.so``.  Raises :class:`CBackendError` with the
    compiler's stderr on failure.
    """
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(prefix="repro-cbuild-") as tmp:
        c_file = Path(tmp) / "model.c"
        c_file.write_text(source)
        tmp_so = out_path.with_name(f".{out_path.name}.{os.getpid()}.tmp")
        cmd = [cc, *CFLAGS, "-o", str(tmp_so), str(c_file)]
        with obs.span("cc-build", cat="compile", backend="c"):
            proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            try:
                tmp_so.unlink()
            except OSError:
                pass
            raise CBackendError(
                f"{cc} failed ({proc.returncode}):\n{proc.stderr.strip()}"
            )
        digest = hashlib.sha256(tmp_so.read_bytes()).hexdigest()
        tmp_digest = tmp_so.with_name(tmp_so.name + ".sha256")
        tmp_digest.write_text(digest + "\n")
        os.replace(tmp_so, out_path)
        os.replace(tmp_digest, _digest_path(out_path))


class _CompiledLib:
    """One loaded ``.so`` plus the name->slot maps every fork shares.

    Performs the load-time handshake: the artifact must report the
    expected ABI version, signal count, cover count, and value word
    count, or loading raises :class:`CBackendError` and the caller
    rebuilds from source.  Instances are memoized on the cache entry's
    ``runtime`` dict, so forks and later compiles skip ``dlopen``.
    """

    def __init__(self, path: Path, model: CircuitModel) -> None:
        self.path = path
        try:
            lib = ctypes.CDLL(str(path))
        except OSError as exc:
            raise CBackendError(f"cannot load {path}: {exc}") from exc
        try:
            lib.repro_create.restype = ctypes.c_void_p
            lib.repro_create.argtypes = []
            lib.repro_destroy.restype = None
            lib.repro_destroy.argtypes = [ctypes.c_void_p]
            lib.repro_reset.restype = None
            lib.repro_reset.argtypes = [ctypes.c_void_p]
            lib.repro_settle.restype = None
            lib.repro_settle.argtypes = [ctypes.c_void_p]
            lib.repro_step.restype = ctypes.c_uint64
            lib.repro_step.argtypes = [ctypes.c_void_p, ctypes.c_uint64]
            lib.repro_halted.restype = ctypes.c_int32
            lib.repro_halted.argtypes = [ctypes.c_void_p]
            words = ctypes.POINTER(ctypes.c_uint64)
            lib.repro_poke.restype = None
            lib.repro_poke.argtypes = [ctypes.c_void_p, ctypes.c_uint32, words]
            lib.repro_peek.restype = None
            lib.repro_peek.argtypes = [ctypes.c_void_p, ctypes.c_uint32, words]
            lib.repro_read_covers.restype = None
            lib.repro_read_covers.argtypes = [ctypes.c_void_p, words]
            for probe in ("repro_abi_version", "repro_num_signals",
                          "repro_num_covers", "repro_value_words"):
                getattr(lib, probe).restype = ctypes.c_uint32
                getattr(lib, probe).argtypes = []
        except AttributeError as exc:
            raise CBackendError(f"{path} is missing ABI symbols: {exc}") from exc
        names = signal_names(model)
        checks = (
            ("abi version", lib.repro_abi_version(), C_ABI_VERSION),
            ("signal count", lib.repro_num_signals(), len(names)),
            ("cover count", lib.repro_num_covers(), len(model.covers)),
            ("value words", lib.repro_value_words(), VALUE_WORDS),
        )
        for what, got, want in checks:
            if got != want:
                raise CBackendError(
                    f"{path}: {what} mismatch (artifact: {got}, expected: {want})"
                )
        self._lib = lib
        self.index = {name: i for i, name in enumerate(names)}
        self.n_covers = len(model.covers)
        self.create = lib.repro_create
        self.destroy = lib.repro_destroy
        self.reset = lib.repro_reset
        self.settle = lib.repro_settle
        self.step = lib.repro_step
        self.halted = lib.repro_halted
        self.poke = lib.repro_poke
        self.peek = lib.repro_peek
        self.read_covers = lib.repro_read_covers


class CSimulation:
    """ctypes wrapper implementing the standard Simulation protocol.

    State lives entirely inside the native artifact; this wrapper maps
    port names to ABI indices, tracks combinational staleness (settling
    before peeks exactly like the other compiled backends), applies
    counter-width saturation at read time, and feeds the shared
    ``StepMeter`` so cycles/second telemetry reports the ``c`` backend
    alongside the others.
    """

    backend_name = "c"

    def __init__(
        self,
        model: CircuitModel,
        counter_width: Optional[int] = None,
        clib: Optional[_CompiledLib] = None,
    ) -> None:
        assert clib is not None, "CSimulation requires a loaded artifact"
        self._model = model
        self._counter_width = counter_width
        self._clib = clib
        handle = clib.create()
        if not handle:
            raise MemoryError("repro_create returned NULL")
        self._handle = handle
        self._dirty = True
        self._stopped: Optional[StepResult] = None
        self._value_probes: dict[str, dict[int, int]] = {}
        self._input_names = {p.name for p in model.inputs}
        self._port_names = model.port_names
        self._buf = (ctypes.c_uint64 * VALUE_WORDS)()
        self._meter = StepMeter("c")
        self.cycle = 0

    # -- public API ----------------------------------------------------------

    def poke(self, port: str, value: int) -> None:
        """Drive a top-level input (value truncated to the port width)."""
        width = self._model.widths.get(port)
        if width is None or port not in self._input_names:
            raise KeyError(f"no such input port: {port}")
        raw = value & mask(width)
        buf = self._buf
        buf[0] = raw & _U64_MASK
        buf[1] = (raw >> 64) & _U64_MASK
        self._clib.poke(self._handle, self._clib.index[port], buf)
        self._dirty = True

    def peek(self, port: str) -> int:
        """Sample a top-level port (settles combinational logic first)."""
        if port not in self._port_names:
            raise KeyError(f"no such port: {port}")
        if port not in self._input_names:
            self._settle()
        return self._read(port)

    def peek_internal(self, name: str) -> int:
        """Debug access to any internal signal."""
        index = self._clib.index.get(name)
        if index is None:
            raise KeyError(f"no such signal: {name}")
        self._settle()
        return self._read(name)

    def step(self, cycles: int = 1) -> StepResult:
        """Advance by rising clock edges; stops early if a Stop fires."""
        return metered_step(
            self._meter, lambda: self._step(cycles), lambda r: r.cycles
        )

    def cover_counts(self) -> CoverCounts:
        """Saturating cover counters keyed by canonical hierarchical name."""
        n = self._clib.n_covers
        raw = (ctypes.c_uint64 * max(1, n))()
        self._clib.read_covers(self._handle, raw)
        merged: dict[str, int] = {}
        for i, cover in enumerate(self._model.covers):
            merged[cover.name] = merged.get(cover.name, 0) + raw[i]
        return {
            name: saturate(count, self._counter_width)
            for name, count in merged.items()
        }

    def watch_values(self, signal: str) -> None:
        """Efficient ``cover-values``: histogram a signal's value per cycle."""
        if signal not in self._model.widths:
            raise KeyError(f"no such signal: {signal}")
        self._value_probes.setdefault(signal, {})

    def value_histogram(self, signal: str) -> dict[int, int]:
        """The recorded per-cycle value histogram for a watched signal."""
        return dict(self._value_probes[signal])

    @property
    def stopped(self) -> bool:
        """Whether a Stop statement has halted this simulation."""
        return self._stopped is not None

    def fork(self) -> "CSimulation":
        """A fresh simulation of the same design, sharing the loaded .so."""
        return CSimulation(self._model, self._counter_width, self._clib)

    def reset_state(self) -> None:
        """Zero all architectural state, cover counters, and the stop latch."""
        self._clib.reset(self._handle)
        self._stopped = None
        self._dirty = True
        self.cycle = 0
        for histogram in self._value_probes.values():
            histogram.clear()

    # -- internals -----------------------------------------------------------

    def _settle(self) -> None:
        if self._dirty:
            self._clib.settle(self._handle)
            self._dirty = False

    def _read(self, name: str) -> int:
        buf = self._buf
        self._clib.peek(self._handle, self._clib.index[name], buf)
        return buf[0] | (buf[1] << 64)

    def _halted_result(self, done: int) -> Optional[StepResult]:
        index = self._clib.halted(self._handle)
        if index < 0:
            return None
        stop = self._model.stops[index]
        self._stopped = StepResult(0, True, stop.name, stop.exit_code)
        return StepResult(done, True, stop.name, stop.exit_code)

    def _step(self, cycles: int) -> StepResult:
        if cycles > 0 and self._stopped is not None:
            halted = self._stopped
            return StepResult(0, True, halted.stop_name, halted.exit_code)
        if cycles <= 0:
            return StepResult(0)
        if not self._value_probes:
            done = int(self._clib.step(self._handle, cycles))
            self.cycle += done
            if done:
                self._dirty = True
            return self._halted_result(done) or StepResult(done)
        # Value probes need the settled pre-edge values every cycle, so
        # this path steps one edge at a time (still native per edge).
        done = 0
        for _ in range(cycles):
            self._settle()
            for signal, histogram in self._value_probes.items():
                value = self._read(signal)
                histogram[value] = histogram.get(value, 0) + 1
            done += int(self._clib.step(self._handle, 1))
            self.cycle = self.cycle + 1
            self._dirty = True
            result = self._halted_result(done)
            if result is not None:
                return result
        return StepResult(done)

    def __del__(self) -> None:
        handle = getattr(self, "_handle", None)
        clib = getattr(self, "_clib", None)
        if handle and clib is not None:
            try:
                clib.destroy(handle)
            except Exception:
                pass
            self._handle = None


class CBackend:
    """Factory for native-code simulations.

    ``compile()`` discovers a C compiler on PATH at call time, keys the
    build through the content-addressed model cache (emitted C + compiler
    identity + codegen versions), and loads the resulting ``.so`` via
    ctypes.  With no compiler available — or a circuit whose intermediate
    values exceed 128 bits — it degrades to the Treadle JIT tier with a
    single warning per reason and a ``repro_backend_fallback_total``
    metric increment, so campaigns never fail for lack of a toolchain.
    """

    name = "c"

    def __init__(
        self,
        cache: Optional[ModelCache] = None,
        compiler: Optional[str] = None,
    ) -> None:
        self._cache = cache
        self._compiler = compiler
        self._warned: set[str] = set()
        self._fallback_backend: Optional[TreadleBackend] = None

    def compile(self, circuit, counter_width: Optional[int] = None):
        """Build a simulation for a circuit (lowering it as needed)."""
        return self._compile(circuit, counter_width)

    def compile_state(self, state, counter_width: Optional[int] = None):
        """Build a simulation from an already-lowered CompileState."""
        return self._compile(state, counter_width)

    def _compile(self, circuit_or_state, counter_width):
        cc = self._compiler or find_compiler()
        if cc is None:
            return self._fallback(circuit_or_state, counter_width, "no-compiler")
        ccid = compiler_id(cc)

        def build() -> CacheEntry:
            with obs.span("compile", cat="compile", backend=self.name):
                model = build_model(circuit_or_state)
                source = generate_c_source(model)
            return CacheEntry(key="", backend=self.name, model=model, source=source)

        try:
            entry = compile_cached(
                circuit_or_state,
                self.name,
                build,
                cache=self._cache,
                options=(f"cemit{C_EMITTER_VERSION}", f"cc:{ccid}"),
            )
        except CUnsupportedCircuit as exc:
            return self._fallback(
                circuit_or_state, counter_width, "unsupported-width", str(exc)
            )
        clib = entry.runtime.get("clib")
        if clib is None:
            clib = self._load_or_build(entry, cc)
            entry.runtime["clib"] = clib
        return CSimulation(entry.model, counter_width, clib)

    # -- internals -----------------------------------------------------------

    def _artifact_path(self, entry: CacheEntry, source: str) -> Path:
        cache = resolve_cache(self._cache)
        if cache is not None and cache.directory is not None and entry.key:
            return cache.directory / f"{entry.key}{SO_SUFFIX}"
        name = entry.key or hashlib.sha256(source.encode()).hexdigest()
        return _scratch_dir() / f"{name}{SO_SUFFIX}"

    def _load_or_build(self, entry: CacheEntry, cc: str) -> _CompiledLib:
        source = entry.source or generate_c_source(entry.model)
        so_path = self._artifact_path(entry, source)
        if artifact_ok(so_path):
            try:
                return _CompiledLib(so_path, entry.model)
            except CBackendError:
                # Truncated, corrupt, or ABI-stale artifact: rebuild it
                # from the cached source — a bad .so can only ever cost
                # a recompile, never a crash or a wrong simulation.
                pass
        build_shared_object(source, cc, so_path)
        return _CompiledLib(so_path, entry.model)

    def _fallback(self, circuit_or_state, counter_width, reason, detail=""):
        if reason not in self._warned:
            self._warned.add(reason)
            extra = f" ({detail})" if detail else ""
            warnings.warn(
                f"c backend unavailable ({reason}{extra}); "
                "falling back to the treadle JIT tier",
                RuntimeWarning,
                stacklevel=3,
            )
        if obs.enabled:
            obs.inc(
                "repro_backend_fallback_total", backend=self.name, reason=reason
            )
        if self._fallback_backend is None:
            self._fallback_backend = TreadleBackend(jit=True, cache=self._cache)
        return self._fallback_backend._compile(circuit_or_state, counter_width)
