"""Simulation and verification backends implementing the cover primitive.

The five backends of the paper's §3, all behind one interface:

========== ==================================== =======================
backend    stands in for                        character
========== ==================================== =======================
treadle    Treadle (JVM FIRRTL interpreter)     zero build, slow run
verilator  Verilator (compile to C++)           slow build, fast run
essent     ESSENT (activity-driven simulator)   compiled + activity gate
firesim    FireSim (FPGA-accelerated)           scan-chain counters
formal     SymbiYosys (BMC cover traces)        proves/finds reachability
========== ==================================== =======================
"""

from .api import (
    BackendInfo,
    CoverCounts,
    RunFailure,
    ScanChainCorruption,
    Simulation,
    SimulationCrash,
    SimulationFault,
    SimulationTimeout,
    SimulatorBackend,
    StepResult,
    has_port,
    reset_and_run,
    saturate,
)
from .essent import EssentBackend, EssentSimulation
from .firesim import FireSimBackend, FireSimSimulation
from .modelcache import (
    CacheEntry,
    ModelCache,
    cache_key,
    circuit_fingerprint,
    compile_cached,
    default_cache,
    set_default_cache,
)
from .treadle import TreadleBackend, TreadleSimulation
from .verilator import (
    VerilatorBackend,
    VerilatorSimulation,
    convert_coverage_dat,
    parse_coverage_dat,
    write_coverage_dat,
)

BACKENDS = {
    "treadle": TreadleBackend,
    "verilator": VerilatorBackend,
    "essent": EssentBackend,
    "firesim": FireSimBackend,
}

BACKEND_INFO = [
    BackendInfo("treadle", "tree-walking IR interpreter", "interpreter", "none"),
    BackendInfo("verilator", "compiles the circuit to Python", "compiled", "compile"),
    BackendInfo("essent", "compiled with activity gating", "compiled", "compile"),
    BackendInfo("firesim", "scan-chain counters + host driver", "fpga", "synthesis"),
    BackendInfo("formal", "SAT-based bounded model checking", "formal", "encode"),
]

__all__ = [
    "BACKENDS",
    "BACKEND_INFO",
    "BackendInfo",
    "CacheEntry",
    "CoverCounts",
    "ModelCache",
    "cache_key",
    "circuit_fingerprint",
    "compile_cached",
    "default_cache",
    "set_default_cache",
    "EssentBackend",
    "EssentSimulation",
    "FireSimBackend",
    "FireSimSimulation",
    "RunFailure",
    "ScanChainCorruption",
    "Simulation",
    "SimulationCrash",
    "SimulationFault",
    "SimulationTimeout",
    "SimulatorBackend",
    "StepResult",
    "has_port",
    "TreadleBackend",
    "TreadleSimulation",
    "VerilatorBackend",
    "VerilatorSimulation",
    "convert_coverage_dat",
    "parse_coverage_dat",
    "reset_and_run",
    "saturate",
    "write_coverage_dat",
]
