"""Simulation and verification backends implementing the cover primitive.

The backends of the paper's §3 (plus the native tier), all behind one
interface:

========== ==================================== =======================
backend    stands in for                        character
========== ==================================== =======================
treadle    Treadle (JVM FIRRTL interpreter)     zero build, slow run
verilator  Verilator (compile to C++)           slow build, fast run
essent     ESSENT (activity-driven simulator)   compiled + activity gate
firesim    FireSim (FPGA-accelerated)           scan-chain counters
formal     SymbiYosys (BMC cover traces)        proves/finds reachability
c          native codegen (cc + ctypes)         slow build, fastest run
swarm      bit-parallel packed lanes            N stimuli per wide-int op
========== ==================================== =======================

The authoritative capability matrix lives in :data:`BACKEND_MATRIX`
(rendered into DESIGN.md §14 by :func:`backend_matrix_markdown`).
"""

from dataclasses import dataclass

from .api import (
    BackendInfo,
    CoverCounts,
    RunFailure,
    ScanChainCorruption,
    Simulation,
    SimulationCrash,
    SimulationFault,
    SimulationTimeout,
    SimulatorBackend,
    StepResult,
    has_port,
    reset_and_run,
    saturate,
)
from .essent import EssentBackend, EssentSimulation
from .firesim import FireSimBackend, FireSimSimulation
from .modelcache import (
    CacheEntry,
    ModelCache,
    cache_key,
    circuit_fingerprint,
    compile_cached,
    default_cache,
    set_default_cache,
)
from .cbackend import CBackend, CSimulation
from .swarm import SwarmBackend, SwarmSimulation
from .treadle import TreadleBackend, TreadleSimulation
from .verilator import (
    VerilatorBackend,
    VerilatorSimulation,
    convert_coverage_dat,
    parse_coverage_dat,
    write_coverage_dat,
)

BACKENDS = {
    "treadle": TreadleBackend,
    "verilator": VerilatorBackend,
    "essent": EssentBackend,
    "firesim": FireSimBackend,
    "c": CBackend,
    "swarm": SwarmBackend,
}

BACKEND_INFO = [
    BackendInfo("treadle", "tree-walking IR interpreter", "interpreter", "none"),
    BackendInfo("verilator", "compiles the circuit to Python", "compiled", "compile"),
    BackendInfo("essent", "compiled with activity gating", "compiled", "compile"),
    BackendInfo("firesim", "scan-chain counters + host driver", "fpga", "synthesis"),
    BackendInfo("formal", "SAT-based bounded model checking", "formal", "encode"),
    BackendInfo("c", "compiles the circuit to native code", "compiled", "compile"),
    BackendInfo("swarm", "bit-parallel packed-lane simulation", "compiled", "compile"),
]


@dataclass(frozen=True)
class BackendCapabilities:
    """One row of the backend architecture matrix (DESIGN.md §14).

    The authoritative record of what each simulation tier can do; the
    documented matrix is generated from this registry by
    :func:`backend_matrix_markdown` and drift-guarded by a test, exactly
    like the §9 metrics catalog.
    """

    name: str
    execution: str  # how cycles actually run
    step_batch: bool  # native batched step(n) (not a Python loop per edge)
    peek_poke: bool  # value probes / interactive peeks + pokes
    covers: bool  # cover counters read back per canonical name
    cache_tier: str  # what the content-addressed model cache stores
    isolation: bool  # usable under --isolation process (procworker/cluster)
    fallback: str  # tier used when this backend is unavailable


#: ``BACKENDS`` (plus the interpreter/JIT split inside ``treadle``)
#: annotated with capabilities.  Update this table — and regenerate
#: DESIGN.md §14 — whenever a backend or capability is added.
BACKEND_MATRIX = [
    BackendCapabilities(
        "treadle", "tree-walking interpreter", False, True, True,
        "execution model", True, "-"),
    BackendCapabilities(
        "treadle-jit", "generated Python closures", True, True, True,
        "model + Python source", True, "treadle interpreter"),
    BackendCapabilities(
        "verilator", "generated Python class", True, True, True,
        "model + Python source", True, "-"),
    BackendCapabilities(
        "essent", "generated Python, activity-gated", True, True, True,
        "model + Python source", True, "-"),
    BackendCapabilities(
        "c", "cc-compiled shared object (ctypes)", True, True, True,
        "model + C source + .so artifact", True, "treadle JIT"),
    BackendCapabilities(
        "swarm", "packed bit-parallel lanes (wide ints)", True, True, True,
        "model + Python source (keyed by lane count)", True, "-"),
]


def backend_matrix_markdown() -> str:
    """Render :data:`BACKEND_MATRIX` as the DESIGN.md §14 table."""
    header = (
        "| backend | execution | step(n) | peek/poke | covers | "
        "cache tier | process isolation | fallback |"
    )
    rule = "|---|---|---|---|---|---|---|---|"
    yes_no = {True: "yes", False: "no"}
    lines = [header, rule]
    for row in BACKEND_MATRIX:
        lines.append(
            f"| `{row.name}` | {row.execution} | {yes_no[row.step_batch]} | "
            f"{yes_no[row.peek_poke]} | {yes_no[row.covers]} | "
            f"{row.cache_tier} | {yes_no[row.isolation]} | {row.fallback} |"
        )
    return "\n".join(lines)

__all__ = [
    "BACKENDS",
    "BACKEND_INFO",
    "BACKEND_MATRIX",
    "BackendCapabilities",
    "BackendInfo",
    "CBackend",
    "CSimulation",
    "backend_matrix_markdown",
    "CacheEntry",
    "CoverCounts",
    "ModelCache",
    "cache_key",
    "circuit_fingerprint",
    "compile_cached",
    "default_cache",
    "set_default_cache",
    "EssentBackend",
    "EssentSimulation",
    "FireSimBackend",
    "FireSimSimulation",
    "RunFailure",
    "ScanChainCorruption",
    "Simulation",
    "SimulationCrash",
    "SimulationFault",
    "SimulationTimeout",
    "SimulatorBackend",
    "StepResult",
    "SwarmBackend",
    "SwarmSimulation",
    "has_port",
    "TreadleBackend",
    "TreadleSimulation",
    "VerilatorBackend",
    "VerilatorSimulation",
    "convert_coverage_dat",
    "parse_coverage_dat",
    "reset_and_run",
    "saturate",
    "write_coverage_dat",
]
