"""Bounded model checking for cover trace generation (§3.4, §5.5).

Plays the role SymbiYosys plays in the paper: given an instrumented
circuit, find — for every cover statement — an input sequence that reaches
it within ``k`` cycles, or establish that no such sequence exists within
the bound.  The paper uses exactly this to (a) auto-generate tests that
maximize any coverage metric and (b) find dead code and bugs in coverage
instrumentation passes (the §5.5 riscv-mini read-only-I$ and
FSM-over-approximation findings).

The transition system is unrolled ``k`` times over one incremental SAT
solver; each cover gets an activation literal so learned clauses are
shared across all queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ...ir.types import mask
from ..api import CoverCounts
from ..model import CircuitModel, build_model
from .encode import ExprEncoder, FormalUnsupported, GateBuilder, bits_to_value, const_bits
from .sat import Solver, neg

#: guard against accidentally bit-blasting megabyte memories
MAX_MEMORY_BITS = 1 << 16


@dataclass
class CoverTrace:
    """Result of one cover query."""

    name: str
    reachable: bool
    #: first cycle (0-based) at which the predicate held, if reachable
    cycle: Optional[int] = None
    #: per-cycle input assignments reproducing the cover, if reachable
    inputs: list[dict[str, int]] = field(default_factory=list)


@dataclass
class BmcResult:
    """Results for all queried covers."""

    bound: int
    traces: dict[str, CoverTrace]
    solve_seconds: float = 0.0

    @property
    def reachable(self) -> list[str]:
        """Cover names proven reachable within the bound, sorted."""
        return sorted(n for n, t in self.traces.items() if t.reachable)

    @property
    def unreachable(self) -> list[str]:
        """Cover names with no witness within the bound, sorted."""
        return sorted(n for n, t in self.traces.items() if not t.reachable)

    def format(self) -> str:
        """Human-readable multi-line summary for CLI output."""
        lines = [
            f"bounded model check, k={self.bound}: "
            f"{len(self.reachable)} reachable, {len(self.unreachable)} unreachable "
            f"({self.solve_seconds:.2f}s)"
        ]
        for name in self.reachable:
            lines.append(f"  + {name} @ cycle {self.traces[name].cycle}")
        for name in self.unreachable:
            lines.append(f"  - {name} (not reachable in {self.bound} cycles)")
        return "\n".join(lines)


class BoundedModelChecker:
    """Unrolls a circuit and answers cover reachability queries."""

    def __init__(self, circuit_or_state, bound: int, reset_cycles: int = 1) -> None:
        self.model: CircuitModel = build_model(circuit_or_state)
        self.bound = bound
        self.reset_cycles = reset_cycles
        self.solver = Solver()
        self.gates = GateBuilder(self.solver)
        self._input_bits: list[dict[str, list]] = []
        self._cover_bits: dict[str, list] = {c.name: [] for c in self.model.covers}
        self._build()

    # -- construction -------------------------------------------------------------

    def _fresh_word(self, width: int) -> list:
        return [self.gates.new_bit() for _ in range(width)]

    def _build(self) -> None:
        model = self.model
        for memory in model.memories:
            if memory.width * memory.depth > MAX_MEMORY_BITS:
                raise FormalUnsupported(
                    f"memory {memory.name} too large to bit-blast "
                    f"({memory.width}x{memory.depth})"
                )

        # initial state: registers and memories start at zero (as in the
        # software simulators)
        reg_state: dict[str, list] = {
            reg.name: const_bits(0, reg.width) for reg in model.registers
        }
        mem_state: dict[str, list] = {
            memory.name: [const_bits(0, memory.width) for _ in range(memory.depth)]
            for memory in model.memories
        }
        reg_types = {reg.name: reg for reg in model.registers}

        for step in range(self.bound):
            env: dict[str, list] = dict(reg_state)
            inputs: dict[str, list] = {}
            for port in model.inputs:
                width = model.widths[port.name]
                if port.name == "reset" and self.reset_cycles:
                    value = 1 if step < self.reset_cycles else 0
                    inputs[port.name] = const_bits(value, width)
                elif port.type.__class__.__name__ == "ClockType":
                    inputs[port.name] = const_bits(0, width)
                else:
                    inputs[port.name] = self._fresh_word(width)
                env[port.name] = inputs[port.name]
            self._input_bits.append(inputs)

            encoder = ExprEncoder(self.gates, env, mem_state)
            for name, expr in model.comb:
                env[name] = encoder.encode(expr)

            for cover in model.covers:
                pred = encoder.encode(cover.pred)[0]
                en = encoder.encode(cover.en)[0]
                self._cover_bits[cover.name].append(self.gates.and_(pred, en))

            # next state
            new_regs: dict[str, list] = {}
            for reg in model.registers:
                next_bits = encoder._operand(reg.next, reg.width)
                if reg.reset is not None and reg.init is not None:
                    reset_bit = encoder.encode(reg.reset)[0]
                    init_bits = encoder._operand(reg.init, reg.width)
                    next_bits = [
                        self.gates.mux(reset_bit, i, n)
                        for i, n in zip(init_bits, next_bits)
                    ]
                new_regs[reg.name] = next_bits
            new_mems: dict[str, list] = {}
            for memory in model.memories:
                words = mem_state[memory.name]
                for write in memory.writes:
                    en_bit = encoder.encode(write.en)[0]
                    addr_bits = encoder.encode(write.addr)
                    data_bits = encoder._operand(write.data, memory.width)
                    updated = []
                    for index, word in enumerate(words):
                        hit = self.gates.and_(
                            en_bit,
                            self.gates.equal_words(
                                addr_bits, const_bits(index, len(addr_bits))
                            ),
                        )
                        updated.append(
                            [self.gates.mux(hit, d, w) for d, w in zip(data_bits, word)]
                        )
                    words = updated
                new_mems[memory.name] = words
            reg_state = new_regs
            mem_state = new_mems

    # -- queries ----------------------------------------------------------------------

    def query(self, cover_name: str) -> CoverTrace:
        """Is this cover reachable within the bound?  Returns a trace if so."""
        bits = self._cover_bits.get(cover_name)
        if bits is None:
            raise KeyError(f"no such cover: {cover_name}")
        literals = [b for b in bits if b >= 2]
        if any(b == 1 for b in bits):
            # constant-true predicate: reachable under any inputs
            result = self.solver.solve([])
        elif not literals:
            return CoverTrace(cover_name, False)
        else:
            goal = self.gates.new_bit()
            self.solver.add_clause([neg(goal)] + literals)
            result = self.solver.solve([goal])
        if not result.sat:
            return CoverTrace(cover_name, False)
        # find the first cycle where the predicate held and extract inputs
        cycle = None
        for step, bit in enumerate(bits):
            if bit == 1 or (bit >= 2 and bits_to_value([bit], result.model)):
                cycle = step
                break
        inputs = []
        for step in range(self.bound if cycle is None else cycle + 1):
            frame = {
                name: bits_to_value(word, result.model)
                for name, word in self._input_bits[step].items()
            }
            inputs.append(frame)
        return CoverTrace(cover_name, True, cycle, inputs)

    def check_all(self) -> BmcResult:
        """Query every cover in the design (the SymbiYosys ``cover`` mode)."""
        started = time.perf_counter()
        traces = {c.name: self.query(c.name) for c in self.model.covers}
        return BmcResult(self.bound, traces, time.perf_counter() - started)


def generate_cover_traces(circuit_or_state, bound: int = 40, reset_cycles: int = 1) -> BmcResult:
    """One-call formal trace generation for all covers (paper §5.5 flow)."""
    checker = BoundedModelChecker(circuit_or_state, bound, reset_cycles)
    return checker.check_all()


def replay_trace(sim, trace: CoverTrace) -> CoverCounts:
    """Replay a BMC witness on any simulation backend; returns its counts.

    Closing the loop: the formal tool generates inputs, the simulator
    confirms the cover fires — the cross-backend property the shared cover
    namespace makes possible.
    """
    for frame in trace.inputs:
        for name, value in frame.items():
            sim.poke(name, value)
        sim.step(1)
    return sim.cover_counts()
