"""Formal verification backend: SAT-based cover trace generation."""

from .bmc import (
    BmcResult,
    BoundedModelChecker,
    CoverTrace,
    generate_cover_traces,
    replay_trace,
)
from .encode import ExprEncoder, FormalUnsupported, GateBuilder
from .sat import Solver, SolveResult, make_lit, neg, var_of

__all__ = [
    "BmcResult",
    "BoundedModelChecker",
    "CoverTrace",
    "ExprEncoder",
    "FormalUnsupported",
    "GateBuilder",
    "SolveResult",
    "Solver",
    "generate_cover_traces",
    "make_lit",
    "neg",
    "replay_trace",
    "var_of",
]
