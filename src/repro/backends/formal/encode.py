"""Bit-blasting of IR expressions to CNF (Tseitin encoding).

Values are lists of *bits*, LSB first.  A bit is ``0`` (constant false),
``1`` (constant true), or a solver literal (``>= 2``).  The gate layer
performs constant folding and structural hashing so repeated subcircuits
encode once.

Division/remainder are unsupported (the formal flow targets control logic;
the software backends cover full arithmetic) — attempting to encode them
raises :class:`FormalUnsupported`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...ir.nodes import Expr, MemRead, Mux, PrimOp, Ref, SIntLiteral, UIntLiteral
from ...ir.types import bit_width, is_signed, mask
from .sat import Solver, neg

Bit = int  # 0 | 1 | literal (>= 2)
Bits = list  # list[Bit], LSB first


class FormalUnsupported(Exception):
    """Raised for IR constructs the formal engine does not encode."""


class GateBuilder:
    """CNF gate construction with constant folding and structural hashing."""

    def __init__(self, solver: Solver) -> None:
        self.solver = solver
        self._cache: dict[tuple, Bit] = {}

    def new_bit(self) -> Bit:
        """A fresh unconstrained SAT variable as a positive literal."""
        return self.solver.new_var() * 2

    def not_(self, a: Bit) -> Bit:
        """Logical NOT: free (literal flip), folds constants."""
        if a in (0, 1):
            return 1 - a
        return a ^ 1

    def and_(self, a: Bit, b: Bit) -> Bit:
        """Tseitin AND gate; constant-folded and structurally hashed."""
        if a == 0 or b == 0:
            return 0
        if a == 1:
            return b
        if b == 1:
            return a
        if a == b:
            return a
        if a == (b ^ 1):
            return 0
        key = ("and", min(a, b), max(a, b))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        z = self.new_bit()
        add = self.solver.add_clause
        add([neg(z), a])
        add([neg(z), b])
        add([z, neg(a), neg(b)])
        self._cache[key] = z
        return z

    def or_(self, a: Bit, b: Bit) -> Bit:
        """Tseitin OR gate via De Morgan on :meth:`and_`."""
        return self.not_(self.and_(self.not_(a), self.not_(b)))

    def xor(self, a: Bit, b: Bit) -> Bit:
        """Tseitin XOR gate; constant-folded and structurally hashed."""
        if a in (0, 1) and b in (0, 1):
            return a ^ b
        if a in (0, 1):
            return b if a == 0 else self.not_(b)
        if b in (0, 1):
            return a if b == 0 else self.not_(a)
        if a == b:
            return 0
        if a == (b ^ 1):
            return 1
        key = ("xor", min(a, b), max(a, b))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        z = self.new_bit()
        add = self.solver.add_clause
        add([neg(z), a, b])
        add([neg(z), neg(a), neg(b)])
        add([z, neg(a), b])
        add([z, a, neg(b)])
        self._cache[key] = z
        return z

    def mux(self, c: Bit, t: Bit, f: Bit) -> Bit:
        """2:1 multiplexer: ``t`` when ``c`` else ``f``."""
        if c == 1:
            return t
        if c == 0:
            return f
        if t == f:
            return t
        # z = (c & t) | (!c & f)
        return self.or_(self.and_(c, t), self.and_(self.not_(c), f))

    # -- word-level helpers ----------------------------------------------------

    def add_words(self, a: Bits, b: Bits) -> Bits:
        """Ripple-carry addition; result has len(a) bits (a and b same length)."""
        assert len(a) == len(b)
        out: Bits = []
        carry: Bit = 0
        for bit_a, bit_b in zip(a, b):
            s = self.xor(self.xor(bit_a, bit_b), carry)
            carry = self.or_(
                self.and_(bit_a, bit_b), self.and_(carry, self.xor(bit_a, bit_b))
            )
            out.append(s)
        return out

    def negate_word(self, a: Bits) -> Bits:
        """Two's-complement negation of an LSB-first word."""
        inverted = [self.not_(bit) for bit in a]
        one = [1] + [0] * (len(a) - 1)
        return self.add_words(inverted, one)

    def equal_words(self, a: Bits, b: Bits) -> Bit:
        """One bit: a == b over equal-length words."""
        assert len(a) == len(b)
        result: Bit = 1
        for bit_a, bit_b in zip(a, b):
            result = self.and_(result, self.not_(self.xor(bit_a, bit_b)))
        return result

    def less_than_unsigned(self, a: Bits, b: Bits) -> Bit:
        """a < b over equal-length unsigned words."""
        assert len(a) == len(b)
        result: Bit = 0
        for bit_a, bit_b in zip(a, b):  # LSB to MSB
            lt = self.and_(self.not_(bit_a), bit_b)
            eq = self.not_(self.xor(bit_a, bit_b))
            result = self.or_(lt, self.and_(eq, result))
        return result

    def or_tree(self, bits: Sequence[Bit]) -> Bit:
        """OR-reduce a sequence of bits (0 for the empty sequence)."""
        result: Bit = 0
        for bit in bits:
            result = self.or_(result, bit)
        return result

    def and_tree(self, bits: Sequence[Bit]) -> Bit:
        """AND-reduce a sequence of bits (1 for the empty sequence)."""
        result: Bit = 1
        for bit in bits:
            result = self.and_(result, bit)
        return result

    def xor_tree(self, bits: Sequence[Bit]) -> Bit:
        """XOR-reduce a sequence of bits (parity; 0 for empty)."""
        result: Bit = 0
        for bit in bits:
            result = self.xor(result, bit)
        return result


def const_bits(value: int, width: int) -> Bits:
    """A constant as LSB-first bit list of ``width`` constant bits."""
    return [(value >> i) & 1 for i in range(width)]


def bits_to_value(bits: Bits, model: dict[int, bool]) -> int:
    """Evaluate an LSB-first bit list under a SAT model to an integer."""
    value = 0
    for i, bit in enumerate(bits):
        if bit == 1:
            value |= 1 << i
        elif bit >= 2:
            if model.get(bit >> 1, False) != bool(bit & 1):
                # positive literal true, or negative literal with var false
                value |= 1 << i
    return value


class ExprEncoder:
    """Encodes IR expressions over an environment of named bit-vectors."""

    def __init__(self, gates: GateBuilder, env: dict[str, Bits], mems: dict[str, list]) -> None:
        self.gates = gates
        self.env = env
        self.mems = mems
        self._memo: dict[int, Bits] = {}

    def _extend(self, bits: Bits, width: int, signed: bool) -> Bits:
        if len(bits) >= width:
            return bits[:width]
        fill: Bit = bits[-1] if (signed and bits) else 0
        return bits + [fill] * (width - len(bits))

    def _operand(self, expr: Expr, width: int) -> Bits:
        """Encode an operand, sign/zero-extended to ``width``."""
        return self._extend(self.encode(expr), width, is_signed(expr.tpe))

    def encode(self, expr: Expr) -> Bits:
        """Encode an IR expression to an LSB-first bit list (memoized)."""
        key = id(expr)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        bits = self._encode(expr)
        assert len(bits) == max(bit_width(expr.tpe), 0), f"width bug on {expr}"
        self._memo[key] = bits
        return bits

    def _encode(self, expr: Expr) -> Bits:
        g = self.gates
        if isinstance(expr, Ref):
            if expr.name not in self.env:
                raise FormalUnsupported(f"unbound signal {expr.name}")
            return self.env[expr.name]
        if isinstance(expr, UIntLiteral):
            return const_bits(expr.value, expr.width)
        if isinstance(expr, SIntLiteral):
            return const_bits(expr.value & mask(expr.width), expr.width)
        if isinstance(expr, Mux):
            width = bit_width(expr.type)
            cond = self.encode(expr.cond)[0]
            tval = self._operand(expr.tval, width)
            fval = self._operand(expr.fval, width)
            return [g.mux(cond, t, f) for t, f in zip(tval, fval)]
        if isinstance(expr, MemRead):
            return self._encode_mem_read(expr)
        if isinstance(expr, PrimOp):
            return self._encode_primop(expr)
        raise FormalUnsupported(f"cannot encode {expr!r}")

    def _encode_mem_read(self, expr: MemRead) -> Bits:
        g = self.gates
        words = self.mems.get(expr.mem)
        if words is None:
            raise FormalUnsupported(f"unbound memory {expr.mem}")
        addr = self.encode(expr.addr)
        width = bit_width(expr.type)
        result = const_bits(0, width)
        for index, word in enumerate(words):
            hit = g.equal_words(addr, const_bits(index, len(addr)))
            result = [g.mux(hit, w, r) for w, r in zip(word, result)]
        return result

    def _encode_primop(self, expr: PrimOp) -> Bits:
        g = self.gates
        op = expr.op
        args = expr.args
        width = bit_width(expr.type)
        signed = is_signed(args[0].tpe) if args else False

        if op in ("add", "sub"):
            a = self._operand(args[0], width)
            b = self._operand(args[1], width)
            if op == "sub":
                b = g.negate_word(b)
            return g.add_words(a, b)
        if op == "mul":
            a = self._operand(args[0], width)
            b = self._operand(args[1], width)
            acc = const_bits(0, width)
            for i in range(width):
                partial = [0] * i + [g.and_(b[i], bit) for bit in a[: width - i]]
                acc = g.add_words(acc, partial)
            return acc
        if op in ("div", "rem"):
            raise FormalUnsupported("division is not supported by the formal engine")
        if op in ("lt", "leq", "gt", "geq"):
            common = max(bit_width(args[0].tpe), bit_width(args[1].tpe)) + 1
            a = self._operand(args[0], common)
            b = self._operand(args[1], common)
            if signed:
                # flip sign bits to reduce to unsigned comparison
                a = a[:-1] + [g.not_(a[-1])]
                b = b[:-1] + [g.not_(b[-1])]
            if op == "lt":
                return [g.less_than_unsigned(a, b)]
            if op == "gt":
                return [g.less_than_unsigned(b, a)]
            if op == "leq":
                return [g.not_(g.less_than_unsigned(b, a))]
            return [g.not_(g.less_than_unsigned(a, b))]
        if op in ("eq", "neq"):
            common = max(bit_width(args[0].tpe), bit_width(args[1].tpe))
            a = self._operand(args[0], common)
            b = self._operand(args[1], common)
            equal = g.equal_words(a, b)
            return [equal if op == "eq" else g.not_(equal)]
        if op in ("and", "or", "xor"):
            a = self._operand(args[0], width)
            b = self._operand(args[1], width)
            fn = {"and": g.and_, "or": g.or_, "xor": g.xor}[op]
            return [fn(x, y) for x, y in zip(a, b)]
        if op == "not":
            a = self._operand(args[0], width)
            return [g.not_(bit) for bit in a]
        if op == "neg":
            a = self._operand(args[0], width)
            return g.negate_word(a)
        if op in ("asUInt", "asSInt"):
            return self._extend(self.encode(args[0]), width, False)
        if op == "cat":
            low = self.encode(args[1])
            high = self.encode(args[0])
            return low + high
        if op == "bits":
            hi, lo = expr.consts
            return self.encode(args[0])[lo : hi + 1]
        if op == "head":
            (count,) = expr.consts
            inner = self.encode(args[0])
            return inner[len(inner) - count :]
        if op == "tail":
            (count,) = expr.consts
            inner = self.encode(args[0])
            return inner[: len(inner) - count]
        if op == "shl":
            (count,) = expr.consts
            return const_bits(0, count) + self.encode(args[0])
        if op == "shr":
            (count,) = expr.consts
            inner = self.encode(args[0])
            if count >= len(inner):
                fill: Bit = inner[-1] if (signed and inner) else 0
                return [fill] * width
            return self._extend(inner[count:], width, signed)
        if op in ("dshl", "dshr"):
            return self._encode_dynamic_shift(expr, signed)
        if op == "andr":
            return [g.and_tree(self.encode(args[0]))]
        if op == "orr":
            return [g.or_tree(self.encode(args[0]))]
        if op == "xorr":
            return [g.xor_tree(self.encode(args[0]))]
        if op == "pad":
            return self._extend(self.encode(args[0]), width, signed)
        raise FormalUnsupported(f"cannot encode primop {op}")

    def _encode_dynamic_shift(self, expr: PrimOp, signed: bool) -> Bits:
        g = self.gates
        width = bit_width(expr.type)
        value = self._extend(self.encode(expr.args[0]), width, signed)
        amount = self.encode(expr.args[1])
        left = expr.op == "dshl"
        for stage, select in enumerate(amount):
            shift = 1 << stage
            if shift >= width and not left:
                shifted = [value[-1] if signed else 0] * width
            elif left:
                shifted = ([0] * min(shift, width) + value)[:width]
            else:
                fill: Bit = value[-1] if signed else 0
                shifted = value[shift:] + [fill] * min(shift, width)
            value = [g.mux(select, s, v) for s, v in zip(shifted, value)]
        return value
