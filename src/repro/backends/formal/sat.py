"""A CDCL SAT solver (the engine behind the SymbiYosys-like formal flow).

Implements the standard modern architecture: two-watched-literal unit
propagation, first-UIP conflict clause learning, VSIDS-style activity
ordering with decay, phase saving, and Luby restarts.  Written for clarity
over raw speed — it comfortably handles the bounded-model-checking
instances our cover-trace generation produces (tens of thousands of
variables).

Literal encoding: variable ``v`` (1-based) has positive literal ``2*v`` and
negative literal ``2*v + 1``; ``lit ^ 1`` negates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


def var_of(lit: int) -> int:
    """The variable index of a literal (literals are ``2*var + sign``)."""
    return lit >> 1


def neg(lit: int) -> int:
    """The negation of a literal (flips the sign bit)."""
    return lit ^ 1


def make_lit(var: int, positive: bool = True) -> int:
    """Build a literal from a variable index and polarity."""
    return var * 2 + (0 if positive else 1)


UNASSIGNED = -1


@dataclass
class SolveResult:
    """Outcome of one ``solve()`` call: verdict, model, and search stats."""

    sat: bool
    model: dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0


def _luby(i: int) -> int:
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 1-indexed."""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class Solver:
    """CDCL SAT solver over integer-encoded literals."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        self.watches: dict[int, list[int]] = {}
        self.assign: list[int] = [UNASSIGNED]  # indexed by var, 1-based
        self.level: list[int] = [0]
        self.reason: list[Optional[int]] = [None]
        self.activity: list[float] = [0.0]
        self.phase: list[bool] = [False]
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.prop_head = 0
        self.var_inc = 1.0
        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        #: solve() invocations — the tiered reachability flow asserts the
        #: static screen resolved its covers without ever reaching here
        self.solve_calls = 0

    # -- problem construction ----------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable and return its index."""
        self.num_vars += 1
        self.assign.append(UNASSIGNED)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.phase.append(False)
        return self.num_vars

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT."""
        if not self.ok:
            return False
        seen: set[int] = set()
        clause: list[int] = []
        for lit in lits:
            if lit in seen:
                continue
            if neg(lit) in seen:
                return True  # tautology
            seen.add(lit)
            clause.append(lit)
        # drop literals already false at level 0; satisfied clauses vanish
        filtered: list[int] = []
        for lit in clause:
            value = self._value(lit)
            if value == 1 and self.level[var_of(lit)] == 0:
                return True
            if value == 0 and self.level[var_of(lit)] == 0:
                continue
            filtered.append(lit)
        if not filtered:
            self.ok = False
            return False
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], None):
                self.ok = False
                return False
            return self._propagate() is None or self._fail()
        index = len(self.clauses)
        self.clauses.append(filtered)
        self.watches.setdefault(filtered[0], []).append(index)
        self.watches.setdefault(filtered[1], []).append(index)
        return True

    def _fail(self) -> bool:
        self.ok = False
        return False

    # -- assignment helpers ---------------------------------------------------------

    def _value(self, lit: int) -> int:
        """1 = true, 0 = false, UNASSIGNED otherwise."""
        a = self.assign[var_of(lit)]
        if a == UNASSIGNED:
            return UNASSIGNED
        return a ^ (lit & 1)

    def _enqueue(self, lit: int, reason_clause: Optional[int]) -> bool:
        value = self._value(lit)
        if value == 0:
            return False
        if value == 1:
            return True
        var = var_of(lit)
        self.assign[var] = 1 - (lit & 1)
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason_clause
        self.phase[var] = not (lit & 1)
        self.trail.append(lit)
        return True

    # -- unit propagation -------------------------------------------------------------

    def _propagate(self) -> Optional[int]:
        """Propagate; returns the index of a conflicting clause or None."""
        while self.prop_head < len(self.trail):
            lit = self.trail[self.prop_head]
            self.prop_head += 1
            false_lit = neg(lit)
            watch_list = self.watches.get(false_lit, [])
            new_list: list[int] = []
            for pos, clause_index in enumerate(watch_list):
                clause = self.clauses[clause_index]
                # ensure false_lit is at position 1
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    new_list.append(clause_index)
                    continue
                # find a new watch
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(clause[1], []).append(clause_index)
                        break
                else:
                    new_list.append(clause_index)
                    if not self._enqueue(first, clause_index):
                        new_list.extend(watch_list[pos + 1:])
                        self.watches[false_lit] = new_list
                        return clause_index
                    continue
            self.watches[false_lit] = new_list
        return None

    # -- conflict analysis ------------------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP learning; returns (learned clause, backtrack level)."""
        learned: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = -1
        index = len(self.trail) - 1
        clause = self.clauses[conflict]
        current_level = len(self.trail_lim)

        while True:
            for q in clause if lit == -1 else clause[1:]:
                var = q >> 1
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] == current_level:
                        counter += 1
                    else:
                        learned.append(q)
            while not seen[self.trail[index] >> 1]:
                index -= 1
            lit = self.trail[index]
            index -= 1
            var = lit >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                learned[0] = neg(lit)
                break
            reason_index = self.reason[var]
            assert reason_index is not None
            clause = self.clauses[reason_index]
            if clause[0] != lit:
                clause = [lit] + [q for q in clause if q != lit]

        back_level = 0
        if len(learned) > 1:
            max_pos = 1
            for k in range(2, len(learned)):
                if self.level[learned[k] >> 1] > self.level[learned[max_pos] >> 1]:
                    max_pos = k
            learned[1], learned[max_pos] = learned[max_pos], learned[1]
            back_level = self.level[learned[1] >> 1]
        return learned, back_level

    def _backtrack(self, target_level: int) -> None:
        while len(self.trail_lim) > target_level:
            limit = self.trail_lim.pop()
            while len(self.trail) > limit:
                lit = self.trail.pop()
                self.assign[lit >> 1] = UNASSIGNED
                self.reason[lit >> 1] = None
        self.prop_head = min(self.prop_head, len(self.trail))

    def _decide(self) -> Optional[int]:
        best = -1
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if self.assign[var] == UNASSIGNED and self.activity[var] > best_activity:
                best = var
                best_activity = self.activity[var]
        if best < 0:
            return None
        return make_lit(best, self.phase[best])

    # -- main loop ----------------------------------------------------------------------

    def solve(self, assumptions: Iterable[int] = (), max_conflicts: Optional[int] = None) -> SolveResult:
        """Solve under optional assumption literals."""
        self.solve_calls += 1
        if not self.ok:
            return SolveResult(False)
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self.ok = False
            return SolveResult(False)

        # assumptions become decision levels of their own
        for lit in assumptions:
            if self._value(lit) == 1:
                continue
            if self._value(lit) == 0:
                self._backtrack(0)
                return SolveResult(False)
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, None)
            conflict = self._propagate()
            if conflict is not None:
                self._backtrack(0)
                return SolveResult(False)
        assumption_level = len(self.trail_lim)

        restart_index = 1
        conflicts_here = 0
        budget = _luby(restart_index) * 64
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if max_conflicts is not None and self.conflicts >= max_conflicts:
                    self._backtrack(0)
                    return SolveResult(False, conflicts=self.conflicts, decisions=self.decisions)
                if len(self.trail_lim) == assumption_level:
                    self._backtrack(0)
                    return SolveResult(False, conflicts=self.conflicts, decisions=self.decisions)
                learned, back_level = self._analyze(conflict)
                self._backtrack(max(back_level, assumption_level))
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self._backtrack(0)
                        return SolveResult(False, conflicts=self.conflicts, decisions=self.decisions)
                else:
                    index = len(self.clauses)
                    self.clauses.append(learned)
                    self.watches.setdefault(learned[0], []).append(index)
                    self.watches.setdefault(learned[1], []).append(index)
                    self._enqueue(learned[0], index)
                self.var_inc *= 1.052
                if conflicts_here >= budget:
                    conflicts_here = 0
                    restart_index += 1
                    budget = _luby(restart_index) * 64
                    self._backtrack(assumption_level)
            else:
                lit = self._decide()
                if lit is None:
                    model = {
                        var: self.assign[var] == 1
                        for var in range(1, self.num_vars + 1)
                    }
                    result = SolveResult(True, model, self.conflicts, self.decisions)
                    self._backtrack(0)
                    return result
                self.decisions += 1
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)
