"""FPGA-accelerated simulation model: scan chains, resources, timing."""

from .driver import (
    SCAN_CLOCK_HZ,
    FireSimBackend,
    FireSimSimulation,
    FireSimTimingModel,
)
from .resources import (
    VU9P_FFS,
    VU9P_LUTS,
    FmaxEstimate,
    Resources,
    coverage_counter_resources,
    estimate_fmax,
    estimate_module,
)
from .scanchain import CoverageScanChainPass, ScanChainInfo, insert_scan_chain

__all__ = [
    "CoverageScanChainPass",
    "FireSimBackend",
    "FireSimSimulation",
    "FireSimTimingModel",
    "FmaxEstimate",
    "Resources",
    "SCAN_CLOCK_HZ",
    "ScanChainInfo",
    "VU9P_FFS",
    "VU9P_LUTS",
    "coverage_counter_resources",
    "estimate_fmax",
    "estimate_module",
    "insert_scan_chain",
]
