"""Coverage scan-chain insertion for FPGA-accelerated simulation (§3.3).

FireSim cannot map a ``cover`` statement onto the FPGA directly, so the
paper adds a compiler pass that replaces every cover statement with a
*saturating counter* wired into a per-clock-domain *scan chain* (Figure 4).
This module reproduces that pass as real, simulable RTL:

* each cover becomes a ``width``-bit saturating counter register,
* a ``scan_en`` input switches all counters into one long shift register
  (``scan_in`` -> counter 0 -> ... -> counter N-1 -> ``scan_out``),
* a ``cover_en`` input lets the host freeze counting,
* the pass emits the chain order metadata the driver needs to re-associate
  scanned-out bits with cover names.

Because the output is ordinary RTL, the transformed design runs on any of
the software backends too — the tests verify that scanned-out counts equal
the counts a native backend reports for the same stimulus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...ir.namespace import Namespace
from ...ir.nodes import (
    TRUE,
    Circuit,
    Connect,
    Cover,
    DefRegister,
    Module,
    Mux,
    Port,
    Ref,
    Stmt,
    UIntLiteral,
    and_,
    not_,
    prim,
)
from ...ir.traversal import declared_names
from ...ir.types import UIntType
from ...passes.base import CompileState, Pass, PassError
from ...passes.expand_whens import has_whens
from ..model import build_model


@dataclass
class ScanChainInfo:
    """Metadata the FPGA driver needs to decode the scanned-out bitstream."""

    counter_width: int
    #: canonical cover names in chain order (counter 0 first)
    chain: list[str] = field(default_factory=list)

    @property
    def length_bits(self) -> int:
        """Total chain length in bits (counter_width x number of covers)."""
        return self.counter_width * len(self.chain)

    def decode(self, bits: list[int]) -> dict[str, int]:
        """Reconstruct counts from the serial bitstream.

        ``bits`` is the sequence read from ``scan_out``, one bit per scan
        cycle.  The first bit out is the MSB of the *last* counter in the
        chain.
        """
        if len(bits) != self.length_bits:
            raise ValueError(
                f"expected {self.length_bits} bits, got {len(bits)}"
            )
        counts: dict[str, int] = {}
        position = 0
        for name in reversed(self.chain):
            value = 0
            for _ in range(self.counter_width):
                value = (value << 1) | (bits[position] & 1)
                position += 1
            counts[name] = value
        return counts


class CoverageScanChainPass(Pass):
    """Replace cover statements with a saturating-counter scan chain.

    Requires a flat, lowered circuit (run ``InlineInstances`` first) — the
    paper's pass likewise runs in FireSim's (flat) compiler.  Adds ports:
    ``cover_en``, ``scan_en``, ``scan_in`` (inputs) and ``scan_out``
    (output).
    """

    def __init__(self, counter_width: int = 16) -> None:
        if counter_width < 1:
            raise ValueError("counter width must be at least 1")
        self.counter_width = counter_width
        self.info: Optional[ScanChainInfo] = None

    def run(self, state: CompileState) -> CompileState:
        """Rewrite covers into chained counters; fills ``self.info``."""
        circuit = state.circuit
        if len(circuit.modules) != 1:
            raise PassError("scan chain insertion requires a flattened circuit")
        module = circuit.top
        if has_whens(module):
            raise PassError("scan chain insertion requires low form")
        cover_paths = state.cover_paths or {}

        covers = [s for s in module.body if isinstance(s, Cover)]
        body = [s for s in module.body if not isinstance(s, Cover)]
        ns = Namespace(declared_names(module))

        width = self.counter_width
        max_count = (1 << width) - 1
        clock = _find_clock(module)
        if clock is None:
            raise PassError("scan chain insertion requires a clock port")

        ports = list(module.ports)
        port_names = {p.name for p in ports}
        for name in ("cover_en", "scan_en", "scan_in"):
            if name in port_names:
                raise PassError(f"port {name} already exists")
        ports.append(Port("cover_en", "input", UIntType(1)))
        ports.append(Port("scan_en", "input", UIntType(1)))
        ports.append(Port("scan_in", "input", UIntType(1)))
        ports.append(Port("scan_out", "output", UIntType(1)))
        cover_en = Ref("cover_en", UIntType(1))
        scan_en = Ref("scan_en", UIntType(1))
        chain_bit = Ref("scan_in", UIntType(1))

        info = ScanChainInfo(width)
        additions: list[Stmt] = []
        counter_type = UIntType(width)
        for index, cover in enumerate(covers):
            reg_name = ns.fresh(f"cc_{index}")
            counter = Ref(reg_name, counter_type)
            additions.append(DefRegister(reg_name, counter_type, clock, info=cover.info))

            fire = and_(cover.pred, cover.en, cover_en)
            saturated = prim("eq", counter, UIntLiteral(max_count, width))
            inc = prim("bits", prim("add", counter, UIntLiteral(1, width)), consts=[width - 1, 0])
            counting = Mux.make(and_(fire, not_(saturated)), inc, counter)
            shifted = prim("bits", prim("cat", counter, chain_bit), consts=[width - 1, 0])
            additions.append(Connect(counter, Mux.make(scan_en, shifted, counting)))

            info.chain.append(cover_paths.get(cover.name, cover.name))
            chain_bit = prim("bits", counter, consts=[width - 1, width - 1])

        additions.append(Connect(Ref("scan_out", UIntType(1)), chain_bit))

        new_module = Module(module.name, ports, body + additions, module.info)
        new_circuit = Circuit(circuit.main, [new_module], circuit.annotations)
        self.info = info
        new_state = CompileState(new_circuit, {}, dict(state.metadata))
        new_state.metadata["scan_chain"] = info
        return new_state


def _find_clock(module: Module):
    from ...ir.types import ClockType

    for port in module.ports:
        if isinstance(port.type, ClockType):
            return port.ref()
    return None


def insert_scan_chain(state: CompileState, counter_width: int = 16):
    """Convenience wrapper returning (new_state, chain_info)."""
    pass_ = CoverageScanChainPass(counter_width)
    new_state = pass_.run(state)
    assert pass_.info is not None
    return new_state, pass_.info
