"""FireSim-like simulation driver (§3.3, §5.2).

Wraps a scan-chain-transformed circuit running on any software backend and
plays the role of FireSim's FPGA-hosted controller plus C++ driver: it can
pause the target, freeze the coverage counters, clock out the whole scan
chain, and re-associate the bits with cover names using the chain metadata.

Scanning is non-destructive: the driver recirculates ``scan_out`` back into
``scan_in`` so that after one full rotation every counter holds its
original value again.

The wall-clock model (:class:`FireSimTimingModel`) converts simulated
cycles into FPGA time using the F_max estimate, reproducing the §5.2
"boot Linux at 65 MHz, scan out 8060 counters in 12 ms" style numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...passes.base import CompileState
from ..api import CoverCounts, ScanChainCorruption, StepResult
from .resources import FmaxEstimate, Resources, estimate_fmax, estimate_module
from .scanchain import CoverageScanChainPass, ScanChainInfo

#: scan chain shift clock on the host interface (paper: ~10 MHz effective)
SCAN_CLOCK_HZ = 10_000_000


def scan_crc(bits: list[int]) -> int:
    """CRC-16/CCITT over a scanned-out bitstream (one bit per entry)."""
    crc = 0xFFFF
    for bit in bits:
        crc ^= (bit & 1) << 15
        crc = ((crc << 1) ^ 0x1021 if crc & 0x8000 else crc << 1) & 0xFFFF
    return crc


class FireSimSimulation:
    """Simulation protocol over a scan-chain-instrumented design.

    With ``verify_scans`` the driver defends against host read-path
    corruption in two layers:

    1. **Sample-before-commit.**  The scan protocol is destructive (each
       shift consumes a bit), so whatever the host reads is what gets
       recirculated into the chain.  Before committing a bit back via
       ``scan_in``, the driver samples ``scan_out`` twice; if the samples
       disagree, a transient read flip just happened and the driver raises
       :class:`ScanChainCorruption` *before* the corrupted value is
       recirculated — the chain's stored counts are never poisoned by a
       detected flip.
    2. **Rotation replay.**  After the data rotation the driver rotates
       the chain a second time and compares the two raw bitstreams
       bit-for-bit (CRCs are reported in the error for telemetry).  This
       catches residual corruption that slipped past layer 1, e.g. a bit
       whose chain storage changed between rotations.

    Known limitation: a *persistent* fault (stuck-at on the read path) or
    a transient flip that identically corrupts both samples of the same
    bit (probability p² per bit for independent flips) defeats layer 1,
    and — because the corrupted value is then recirculated — rereads as
    itself in layer 2.  Detecting that class needs hardware support (a
    chain-resident CRC word); the orchestrator's shard validation
    (counter-width/namespace checks) is the remaining backstop.

    On :class:`ScanChainCorruption` the chain state is undefined (the
    rotation was aborted mid-way); discard the simulation instance and
    retry with a fresh one, as the run orchestrator does.
    """

    def __init__(self, base_sim, info: ScanChainInfo, verify_scans: bool = False) -> None:
        self._sim = base_sim
        self.info = info
        self.verify_scans = verify_scans
        self.scan_cycles_total = 0
        self.last_scan_crc: Optional[int] = None
        base_sim.poke("cover_en", 1)
        base_sim.poke("scan_en", 0)
        base_sim.poke("scan_in", 0)

    # -- pass-through ----------------------------------------------------------

    def poke(self, port: str, value: int) -> None:
        if port in ("cover_en", "scan_en", "scan_in"):
            raise KeyError(f"port {port} is owned by the FireSim driver")
        self._sim.poke(port, value)

    def peek(self, port: str) -> int:
        return self._sim.peek(port)

    def step(self, cycles: int = 1) -> StepResult:
        return self._sim.step(cycles)

    @property
    def cycle(self) -> int:
        """Target cycles simulated so far (delegates to the host sim)."""
        return self._sim.cycle

    # -- the scan-out protocol ---------------------------------------------------

    def _rotate_chain(self) -> list[int]:
        """One full non-destructive rotation; returns the bits read.

        With ``verify_scans``, every bit is sampled twice before being
        recirculated; a sample disagreement aborts the rotation (raising
        :class:`ScanChainCorruption`) before the bad value is committed
        back into the chain.
        """
        sim = self._sim
        bits: list[int] = []
        for position in range(self.info.length_bits):
            bit = sim.peek("scan_out")
            if self.verify_scans:
                resample = sim.peek("scan_out")
                if resample != bit:
                    raise ScanChainCorruption(
                        f"scan-out bit {position}/{self.info.length_bits} read "
                        f"unstable ({bit} then {resample}); aborting before the "
                        f"corrupted bit is recirculated into the chain"
                    )
            bits.append(bit)
            sim.poke("scan_in", bit)  # recirculate: scanning is non-destructive
            sim.step(1)
        self.scan_cycles_total += self.info.length_bits
        return bits

    def cover_counts(self) -> CoverCounts:
        """Pause, freeze counters, clock out the chain, restore, resume."""
        sim = self._sim
        sim.poke("cover_en", 0)  # freeze counts
        sim.poke("scan_en", 1)
        try:
            bits = self._rotate_chain()
            self.last_scan_crc = scan_crc(bits)
            if self.verify_scans:
                replay = self._rotate_chain()
                if replay != bits:
                    diverged = next(
                        i for i, (a, b) in enumerate(zip(bits, replay)) if a != b
                    )
                    raise ScanChainCorruption(
                        f"scan-out rotations diverge at bit {diverged}: "
                        f"first rotation CRC {self.last_scan_crc:#06x}, "
                        f"replay CRC {scan_crc(replay):#06x} "
                        f"({self.info.length_bits} bits)"
                    )
        finally:
            sim.poke("scan_en", 0)
            sim.poke("scan_in", 0)
            sim.poke("cover_en", 1)
        return self.info.decode(bits)

    def scan_out_seconds(self, scan_clock_hz: int = SCAN_CLOCK_HZ) -> float:
        """Host-side wall-clock cost of one full scan-out."""
        return self.info.length_bits / scan_clock_hz


@dataclass
class FireSimTimingModel:
    """Converts target cycles to FPGA wall clock (the §5.2 numbers)."""

    fmax: FmaxEstimate
    chain: ScanChainInfo

    @property
    def fmax_hz(self) -> float:
        """Placed design frequency in Hz; RuntimeError if it failed to place."""
        if self.fmax.fmax_mhz is None:
            raise RuntimeError("design failed to place; no timing model")
        return self.fmax.fmax_mhz * 1e6

    def simulation_seconds(self, cycles: int) -> float:
        """Wall-clock seconds to simulate ``cycles`` target cycles on the FPGA."""
        return cycles / self.fmax_hz

    def scan_out_seconds(self, scan_clock_hz: int = SCAN_CLOCK_HZ) -> float:
        """Wall-clock seconds to shift the whole chain out at ``scan_clock_hz``."""
        return self.chain.length_bits / scan_clock_hz


class FireSimBackend:
    """Factory: scan-chain transform + software host simulation + driver.

    ``host_backend`` chooses what stands in for the FPGA (default: the
    compiled backend); ``counter_width`` is the user-selected LUT/accuracy
    trade-off from §3.3.
    """

    name = "firesim"

    def __init__(
        self,
        host_backend=None,
        counter_width: int = 16,
        verify_scans: bool = False,
    ) -> None:
        if host_backend is None:
            from ..verilator import VerilatorBackend

            host_backend = VerilatorBackend()
        self.host_backend = host_backend
        self.counter_width = counter_width
        self.verify_scans = verify_scans

    def compile(self, circuit, counter_width: Optional[int] = None) -> FireSimSimulation:
        from ...passes import lower

        state = lower(circuit, flatten=True)
        return self.compile_state(state, counter_width)

    def compile_state(self, state: CompileState, counter_width: Optional[int] = None) -> FireSimSimulation:
        width = counter_width if counter_width is not None else self.counter_width
        chain_pass = CoverageScanChainPass(width)
        transformed = chain_pass.run(state)
        assert chain_pass.info is not None
        base = self.host_backend.compile_state(transformed)
        return FireSimSimulation(base, chain_pass.info, verify_scans=self.verify_scans)

    def timing_model(self, state: CompileState, counter_width: Optional[int] = None) -> FireSimTimingModel:
        """Resource/F_max estimate for the instrumented design."""
        width = counter_width if counter_width is not None else self.counter_width
        chain_pass = CoverageScanChainPass(width)
        module = state.circuit.top
        n_covers = sum(
            1 for s in module.body if type(s).__name__ == "Cover"
        )
        base = estimate_module(module)
        fmax = estimate_fmax(base, n_covers, width, seed=module.name)
        transformed = chain_pass.run(state)
        assert chain_pass.info is not None
        return FireSimTimingModel(fmax, chain_pass.info)
