"""Analytical FPGA resource and F_max model (Figures 9 and 10).

The paper reports Vivado place & route results on a Xilinx Ultrascale+
VU9P.  We cannot run P&R, so this module provides a transparent analytical
model with the properties the paper's figures exhibit:

* LUT/FF usage grows linearly with the number of coverage counters and
  their bit width; wide counters dominate total utilization (2.8x LUTs for
  32-bit counters on the paper's Rocket SoC),
* F_max degrades as utilization rises (routing congestion) and as counter
  carry chains lengthen; for narrow counters the effect stays within
  placement noise,
* designs whose utilization exceeds the device fail to place (the paper's
  48-bit BOOM configuration).

Every constant is documented; the figures produced from this model are
shape reproductions, not absolute-number reproductions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from ...ir.nodes import Expr, MemRead, Module, Mux, PrimOp
from ...ir.traversal import stmt_exprs, walk_expr, walk_stmts
from ...ir.nodes import DefMemory, DefRegister
from ...ir.types import bit_width

# -- device: Xilinx Ultrascale+ VU9P (as on EC2 F1) ---------------------------
VU9P_LUTS = 1_182_240
VU9P_FFS = 2_364_480
VU9P_BRAM_KB = 9_449

# -- logic cost constants (LUT6 fabric) ----------------------------------------
_LUT_PER_BIT = {
    "add": 1.0,  # carry chain: one LUT+CARRY per bit
    "sub": 1.0,
    "lt": 0.55,
    "leq": 0.55,
    "gt": 0.55,
    "geq": 0.55,
    "eq": 0.4,  # wide compare tree packs ~2.5 bits/LUT
    "neq": 0.4,
    "and": 0.34,  # 3 two-input gates per LUT6
    "or": 0.34,
    "xor": 0.5,
    "not": 0.2,
    "neg": 1.0,
    "andr": 0.2,
    "orr": 0.2,
    "xorr": 0.5,
}
_LUT_PER_MUX_BIT = 0.5  # 2:1 mux packs 2 bits per LUT6
_LUT_PER_MULT_BIT = 1.8  # soft multiplier cost per partial-product bit pair
_DYN_SHIFT_LUT_PER_BIT = 1.6  # barrel shifter: log2 stages of muxes

_T_LUT_NS = 0.45  # LUT + local routing delay
_T_CLK_NS = 1.7  # clock-to-out plus setup
_T_CARRY_NS = 0.03  # per-bit carry chain delay
_CONGESTION_KNEE = 0.55  # utilization where routing delay starts climbing
_NOISE_PERCENT = 2.5  # placement noise on F_max, +/-


@dataclass
class Resources:
    """Estimated FPGA resource usage."""

    luts: float
    ffs: float
    bram_kb: float
    logic_depth: int

    def __add__(self, other: "Resources") -> "Resources":
        return Resources(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.bram_kb + other.bram_kb,
            max(self.logic_depth, other.logic_depth),
        )


def _expr_luts(expr: Expr) -> float:
    total = 0.0
    for node in walk_expr(expr):
        if isinstance(node, PrimOp):
            width = bit_width(node.type)
            if node.op == "mul":
                total += _LUT_PER_MULT_BIT * min(
                    bit_width(node.args[0].tpe) * bit_width(node.args[1].tpe) / 2, 2000
                )
            elif node.op in ("dshl", "dshr"):
                total += _DYN_SHIFT_LUT_PER_BIT * width
            elif node.op in ("div", "rem"):
                total += 3.0 * width * width / 4  # restoring divider array
            elif node.op in _LUT_PER_BIT:
                total += _LUT_PER_BIT[node.op] * max(
                    bit_width(node.args[0].tpe), width
                )
            # cat/bits/pad/shl/shr/as* are wiring: zero LUTs
        elif isinstance(node, Mux):
            total += _LUT_PER_MUX_BIT * bit_width(node.type)
    return total


def _expr_depth(expr: Expr) -> int:
    depth = 0
    stack = [(expr, 0)]
    while stack:
        node, d = stack.pop()
        if isinstance(node, (PrimOp, Mux)):
            d += 1
        depth = max(depth, d)
        if isinstance(node, PrimOp):
            stack.extend((a, d) for a in node.args)
        elif isinstance(node, Mux):
            stack.extend(((node.cond, d), (node.tval, d), (node.fval, d)))
        elif isinstance(node, MemRead):
            stack.append((node.addr, d + 1))
    return depth


def estimate_module(module: Module) -> Resources:
    """Estimate resources of one (flat) module's logic."""
    luts = 0.0
    ffs = 0.0
    bram_kb = 0.0
    depth = 0
    for stmt in walk_stmts(module.body):
        for expr in stmt_exprs(stmt):
            luts += _expr_luts(expr)
            depth = max(depth, _expr_depth(expr))
        if isinstance(stmt, DefRegister):
            ffs += bit_width(stmt.type)
        elif isinstance(stmt, DefMemory):
            bits = bit_width(stmt.data_type) * stmt.depth
            if bits >= 8192:
                bram_kb += bits / 8192.0 * 4.5  # 36kb BRAM granularity
            else:
                luts += bits / 64.0  # distributed LUTRAM
    return Resources(luts, ffs, bram_kb, depth)


def coverage_counter_resources(n_covers: int, counter_width: int) -> Resources:
    """Cost of the scan-chain coverage hardware (per Figure 4's structure).

    Per counter: ``width`` flip-flops, a saturating incrementer (carry chain
    plus saturation compare) and the scan/count/hold input mux.
    """
    luts_per_counter = (
        1.0 * counter_width  # incrementer carry chain
        + 0.4 * counter_width  # saturation comparator
        + 0.5 * counter_width  # scan/count/hold mux (2 bits per LUT, 2 levels)
        + 1.5  # fire-gating control
    )
    return Resources(
        luts=n_covers * luts_per_counter,
        ffs=n_covers * counter_width,
        bram_kb=0.0,
        logic_depth=0,
    )


def _noise(seed: str) -> float:
    digest = hashlib.sha256(seed.encode()).digest()
    fraction = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
    return (fraction * 2 - 1) * _NOISE_PERCENT / 100.0


@dataclass
class FmaxEstimate:
    """Result of the timing model."""

    fmax_mhz: Optional[float]  # None = failed to place
    utilization: float
    critical_path_ns: float


def estimate_fmax(
    base: Resources,
    n_covers: int = 0,
    counter_width: int = 0,
    device_luts: int = VU9P_LUTS,
    seed: str = "",
) -> FmaxEstimate:
    """F_max of a design plus optional coverage hardware.

    Counter width 0 models the uninstrumented baseline (as in Figure 10's
    x-axis).
    """
    coverage = (
        coverage_counter_resources(n_covers, counter_width)
        if counter_width > 0
        else Resources(0, 0, 0, 0)
    )
    total_luts = base.luts + coverage.luts
    utilization = total_luts / device_luts
    if utilization > 1.0:
        # the paper's 48-bit BOOM configuration "did not place"
        return FmaxEstimate(None, utilization, float("inf"))

    path = _T_CLK_NS + base.logic_depth * _T_LUT_NS
    if counter_width > 0:
        # counter carry chain may become the critical path
        counter_path = _T_CLK_NS + 2 * _T_LUT_NS + counter_width * _T_CARRY_NS
        path = max(path, counter_path)
    if utilization > _CONGESTION_KNEE:
        # routing congestion: delays climb towards full utilization
        path *= 1.0 + 1.8 * (utilization - _CONGESTION_KNEE) / (1.0 - _CONGESTION_KNEE)
    path *= 1.0 + _noise(f"{seed}:{counter_width}:{n_covers}")
    return FmaxEstimate(1000.0 / path, utilization, path)
