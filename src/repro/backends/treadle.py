"""Treadle-like backend: a tree-walking IR interpreter.

Mirrors the role of Treadle in the paper (§3.1): zero build time, modest
throughput, runs directly on the IR, preferred for short runs and unit
tests.  Cover support is native — a saturating counter per cover statement,
sampled at each rising clock edge (the ~200-lines-of-Scala integration the
paper describes maps to the ``_sample_covers`` method here).
"""

from __future__ import annotations

import time
from typing import Optional

from ..ir.nodes import Expr, MemRead, Mux, PrimOp, Ref, SIntLiteral, UIntLiteral
from ..ir.ops import OPS
from ..ir.types import bit_width, is_signed, mask, value_of
from ..runtime.telemetry import StepMeter, obs
from .api import CoverCounts, StepResult, saturate
from .model import CircuitModel, build_model


class TreadleSimulation:
    """Interpreting simulation of one circuit instance."""

    def __init__(self, model: CircuitModel, counter_width: Optional[int] = None) -> None:
        self._model = model
        self._counter_width = counter_width
        self._values: dict[str, int] = {}
        self._mems: dict[str, list[int]] = {
            m.name: [0] * m.depth for m in model.memories
        }
        self._counts: dict[str, int] = {c.name: 0 for c in model.covers}
        self._dirty = True
        self._stopped: Optional[StepResult] = None
        self._value_probes: dict[str, dict[int, int]] = {}
        self.cycle = 0
        for port in model.inputs:
            self._values[port.name] = 0
        for reg in model.registers:
            self._values[reg.name] = 0

    # -- public API ----------------------------------------------------------

    def poke(self, port: str, value: int) -> None:
        width = self._model.widths.get(port)
        if width is None or all(p.name != port for p in self._model.inputs):
            raise KeyError(f"no such input port: {port}")
        self._values[port] = value & mask(width)
        self._dirty = True

    def peek(self, port: str) -> int:
        if port not in self._model.port_names:
            raise KeyError(f"no such port: {port}")
        self._settle()
        return self._values.get(port, 0)

    def peek_internal(self, name: str) -> int:
        """Debug access to any internal signal."""
        self._settle()
        return self._values[name]

    def step(self, cycles: int = 1) -> StepResult:
        if obs.enabled:
            started = time.perf_counter()
            result = self._step(cycles)
            meter = getattr(self, "_meter", None)
            if meter is None:
                meter = self._meter = StepMeter("treadle")
            meter.add(result.cycles, time.perf_counter() - started)
            return result
        return self._step(cycles)

    def _step(self, cycles: int) -> StepResult:
        done = 0
        for _ in range(cycles):
            if self._stopped is not None:
                return StepResult(done, True, self._stopped.stop_name, self._stopped.exit_code)
            self._settle()
            self._sample_covers()
            for signal, histogram in self._value_probes.items():
                value = self._values[signal]
                histogram[value] = histogram.get(value, 0) + 1
            stop = self._check_stops()
            self._commit_state()
            self.cycle += 1
            done += 1
            self._dirty = True
            if stop is not None:
                self._stopped = stop
                return StepResult(done, True, stop.stop_name, stop.exit_code)
        return StepResult(done)

    def cover_counts(self) -> CoverCounts:
        return {name: saturate(count, self._counter_width) for name, count in self._counts.items()}

    def watch_values(self, signal: str) -> None:
        """Efficient ``cover-values``: histogram a signal's value per cycle.

        The §6 alternative to exponential per-value cover statements —
        implemented "in software by indexing into an array of counters".
        """
        if signal not in self._model.widths:
            raise KeyError(f"no such signal: {signal}")
        self._value_probes.setdefault(signal, {})

    def value_histogram(self, signal: str) -> dict[int, int]:
        return dict(self._value_probes[signal])

    @property
    def stopped(self) -> bool:
        return self._stopped is not None

    def fork(self) -> "TreadleSimulation":
        """A fresh simulation of the same design (shares the static model)."""
        return TreadleSimulation(self._model, self._counter_width)

    # -- internals -------------------------------------------------------------

    def _settle(self) -> None:
        if not self._dirty:
            return
        values = self._values
        for name, expr in self._model.comb:
            values[name] = self._eval(expr)
        self._dirty = False

    def _eval(self, expr: Expr) -> int:
        kind = type(expr)
        if kind is Ref:
            return self._values[expr.name]
        if kind is UIntLiteral:
            return expr.value
        if kind is SIntLiteral:
            return expr.value & mask(expr.width)
        if kind is PrimOp:
            args = [self._eval(a) for a in expr.args]
            return OPS[expr.op].evaluate(args, [a.tpe for a in expr.args], expr.consts)
        if kind is Mux:
            chosen = expr.tval if self._eval(expr.cond) else expr.fval
            raw = self._eval(chosen)
            # encode the chosen arm into the mux's (possibly wider) type
            return _encode(value_of(raw, chosen.tpe), expr.type)
        if kind is MemRead:
            memory = self._mems[expr.mem]
            addr = self._eval(expr.addr)
            return memory[addr] if addr < len(memory) else 0
        raise TypeError(f"cannot evaluate {expr!r}")

    def _sample_covers(self) -> None:
        counts = self._counts
        for cover in self._model.covers:
            if self._eval(cover.en) and self._eval(cover.pred):
                counts[cover.name] += 1

    def _check_stops(self) -> Optional[StepResult]:
        for stop in self._model.stops:
            if self._eval(stop.en) and self._eval(stop.pred):
                return StepResult(0, True, stop.name, stop.exit_code)
        return None

    def _commit_state(self) -> None:
        values = self._values
        next_values: list[tuple[str, int]] = []
        for reg in self._model.registers:
            if reg.reset is not None and self._eval(reg.reset):
                assert reg.init is not None
                raw = self._eval(reg.init)
                raw = _encode(value_of(raw, reg.init.tpe), _reg_type(reg))
            else:
                raw = self._eval(reg.next)
                raw = _encode(value_of(raw, reg.next.tpe), _reg_type(reg))
            next_values.append((reg.name, raw))
        mem_writes: list[tuple[str, int, int]] = []
        for memory in self._model.memories:
            for write in memory.writes:
                if self._eval(write.en):
                    addr = self._eval(write.addr)
                    if addr < memory.depth:
                        data = self._eval(write.data) & mask(memory.width)
                        mem_writes.append((memory.name, addr, data))
        for name, raw in next_values:
            values[name] = raw
        for name, addr, data in mem_writes:
            self._mems[name][addr] = data


def _reg_type(reg):
    from ..ir.types import SIntType, UIntType

    return SIntType(reg.width) if reg.signed else UIntType(reg.width)


def _encode(value: int, tpe) -> int:
    return value & mask(bit_width(tpe))


class TreadleBackend:
    """Factory for interpreting simulations."""

    name = "treadle"

    def compile(self, circuit, counter_width: Optional[int] = None) -> TreadleSimulation:
        with obs.span("compile", cat="compile", backend="treadle"):
            model = build_model(circuit)
            return TreadleSimulation(model, counter_width)

    def compile_state(self, state, counter_width: Optional[int] = None) -> TreadleSimulation:
        """Build a simulation from an already-lowered CompileState."""
        with obs.span("compile", cat="compile", backend="treadle"):
            model = build_model(state)
            return TreadleSimulation(model, counter_width)
