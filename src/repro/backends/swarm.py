"""Swarm backend: N bit-parallel simulation lanes packed per signal.

The §5.4 fuzzing workload is "same netlist, many stimuli" — embarrassingly
SIMD.  This backend packs ``lanes`` independent executions into one Python
integer per signal at a uniform lane stride (see
:class:`~repro.backends.pycodegen.SwarmEmitter`): gate-level ops run as a
single wide-int ``&``/``|``/``^`` regardless of the lane count, arithmetic
and comparisons run as SWAR carry-contained ops, and cover predicates
accumulate into vertical (bit-plane) counters whose per-lane values are
bit-identical to the scalar backends' saturating counters — popcounting a
plane set yields aggregate counts directly.

Per-lane semantics are exactly the scalar contract: lane ``l`` poked and
stepped through :class:`SwarmSimulation`'s ``poke_lane``/``peek_lane``/
``cover_counts(lane)`` behaves like one :class:`TreadleSimulation` fed the
same stimulus, including stop statements (each lane latches the first stop
that fires for it and leaves the active set) and counter saturation
(clamped at read time).  The aggregate ``cover_counts()`` is the
:func:`~repro.coverage.common.merge_counts` of all lanes.

Two per-lane caveats, documented rather than papered over:

* registers of a stopped/retired lane keep free-running (the active mask
  gates cover sampling, stop claiming, and memory writes — not register
  commit), so ``peek_lane`` of an inactive lane reflects that free-run;
  its *counts* are frozen, which is what the bit-identity contract
  covers, and
* ``watch_values`` value probes are unsupported — the packed hot loop has
  no per-cycle scalar observation point.
"""

from __future__ import annotations

from typing import Optional

from ..ir.traversal import walk_expr
from ..ir.types import bit_width, mask
from ..runtime.telemetry import StepMeter, obs
from .api import CoverCounts, StepResult, metered_step, saturate
from .model import CircuitModel, build_model
from .modelcache import CacheEntry, ModelCache, compile_cached
from .pycodegen import (
    RUNTIME_HELPERS,
    SWARM_EMITTER_VERSION,
    SWARM_RUNTIME_HELPERS,
    CodeBuilder,
    SwarmEmitter,
    pynames,
)

#: lane-count bounds: 1 is the degenerate scalar case (still packed form),
#: the ceiling keeps a single packed signal under ~0.5 Mbit on wide designs
MAX_LANES = 4096


def _model_exprs(model: CircuitModel):
    """Every expression the generated code will evaluate."""
    for _, expr in model.comb:
        yield expr
    for reg in model.registers:
        yield reg.next
        if reg.reset is not None:
            yield reg.reset
        if reg.init is not None:
            yield reg.init
    for cover in model.covers:
        yield cover.pred
        yield cover.en
    for stop in model.stops:
        yield stop.pred
        yield stop.en
    for memory in model.memories:
        for write in memory.writes:
            yield write.addr
            yield write.data
            yield write.en


def lane_stride(model: CircuitModel) -> int:
    """The uniform per-lane stride for ``model``.

    Max bit width over every signal *and every intermediate expression
    node*, plus two spare bits: one absorbs SWAR carries (add/sub/compare
    intermediates reach ``2**(w+1)``), one is the always-free lane top bit
    the packed non-zero test carries into.
    """
    widest = 1
    for width in model.widths.values():
        widest = max(widest, width)
    for memory in model.memories:
        widest = max(widest, memory.width)
    for expr in _model_exprs(model):
        for node in walk_expr(expr):
            widest = max(widest, bit_width(node.tpe))
    return widest + 2


def generate_swarm_source(model: CircuitModel, lanes: int) -> str:
    """Generate the packed ``settle``/``run`` module for ``model``.

    Mirrors the treadle JIT's fused ``run`` loop — same evaluation order
    (settle, covers, stops, register/memory commit), same state-dict ABI —
    except every value is a packed integer, cover counters are vertical
    plane lists, and a ``ctl`` dict carries the active-lane mask plus
    per-lane stop bookkeeping across calls.
    """
    stride = lane_stride(model)
    all_names = (
        [p.name for p in model.inputs]
        + [r.name for r in model.registers]
        + [name for name, _ in model.comb]
    )
    py = pynames(all_names)
    mems = {m.name: f"m_{i}" for i, m in enumerate(model.memories)}
    emitter = SwarmEmitter(lanes, stride, lambda n: py[n], lambda n: mems[n])
    gen = emitter.gen

    state_names = [p.name for p in model.inputs] + [
        r.name for r in model.registers
    ]

    body = CodeBuilder()

    def load(names: list[str]) -> None:
        for name in names:
            body.emit(f"{py[name]} = values[{name!r}]")
        for memory in model.memories:
            body.emit(f"{mems[memory.name]} = mems[{memory.name!r}]")

    # -- settle: one combinational sweep, written back into `values` --------
    body.emit("def settle(values, mems):")
    body.depth += 1
    load(state_names)
    for name, expr in model.comb:
        body.emit(f"{py[name]} = {gen(expr)}")
        body.emit(f"values[{name!r}] = {py[name]}")
    if not (state_names or model.comb or model.memories):
        body.emit("pass")
    body.depth -= 1
    body.emit()

    def emit_run(fname: str, masked: bool) -> None:
        """The fused packed hot loop.

        ``masked`` ANDs cover/stop/memory-write masks with the active-lane
        set; the unmasked variant is emitted for stop-free models, where
        ``active`` cannot change inside one ``run`` call — when every lane
        is live the masking would be pure overhead (one extra wide-int op
        per cover per cycle, the dominant cost on toggle-instrumented
        designs).
        """
        body.emit(f"def {fname}(values, mems, counts, ctl, cycles):")
        body.depth += 1
        load(state_names)
        for i, cover in enumerate(model.covers):
            body.emit(f"c_{i} = counts[{cover.name!r}]")
        body.emit("active = ctl['active']")
        if model.stops:
            body.emit("stop_lane = ctl['stop_lane']")
            body.emit("stop_cycle = ctl['stop_cycle']")
        body.emit("base = ctl['cycle']")
        body.emit("done = 0")
        body.emit("for _ in range(cycles):")
        body.depth += 1
        if masked:
            body.emit("if not active: break")
        for name, expr in model.comb:
            body.emit(f"{py[name]} = {gen(expr)}")
        # covers first, then stops: the stop cycle's covers still count,
        # and the mask used for sampling is the mask at cycle start —
        # exactly the scalar order (sample, then check stops, then commit)
        for i, cover in enumerate(model.covers):
            fire = emitter.predicate(cover.pred, cover.en)
            if masked:
                fire = f"{fire} & active"
            body.emit(f"_m = {fire}")
            body.emit(f"if _m: _vadd(c_{i}, _m)")
        for index, stop in enumerate(model.stops):
            # claim in statement order: a lane removed by an earlier stop
            # is invisible to later ones, like the scalar if/elif chain
            body.emit(
                f"_f = {emitter.predicate(stop.pred, stop.en)} & active"
            )
            body.emit("if _f:")
            body.depth += 1
            body.emit("active &= ~_f")
            body.emit("while _f:")
            body.depth += 1
            body.emit("_b = _f & -_f")
            body.emit("_i = (_b.bit_length() - 1) // _S")
            body.emit(f"stop_lane[_i] = {index}")
            body.emit("stop_cycle[_i] = base + done")
            body.emit("_f ^= _b")
            body.depth -= 2
        for i, reg in enumerate(model.registers):
            next_text = emitter.fit(gen(reg.next), reg.next.tpe, reg.width)
            if reg.reset is not None and reg.init is not None:
                init_text = emitter.fit(
                    gen(reg.init), reg.init.tpe, reg.width
                )
                select = (
                    f"_sel({gen(reg.reset)}, {init_text}, {next_text}, "
                    f"{mask(reg.width)}, {emitter.rep(mask(reg.width))})"
                )
                body.emit(f"n_{i} = {select}")
            else:
                body.emit(f"n_{i} = {next_text}")
        for memory in model.memories:
            for write in memory.writes:
                addr_mask = mask(bit_width(write.addr.tpe))
                en = gen(write.en)
                body.emit(f"_e = {en} & active" if masked else f"_e = {en}")
                body.emit("if _e:")
                body.depth += 1
                body.emit(f"_wa = {gen(write.addr)}")
                body.emit(f"_wd = {gen(write.data)}")
                body.emit("while _e:")
                body.depth += 1
                body.emit("_b = _e & -_e")
                body.emit("_p = _b.bit_length() - 1")
                body.emit(f"_a = (_wa >> _p) & {addr_mask}")
                store = (
                    f"{mems[memory.name]}[_p // _S][_a] = "
                    f"(_wd >> _p) & {mask(memory.width)}"
                )
                if memory.needs_write_guard:
                    body.emit(f"if _a < {memory.depth}: {store}")
                else:
                    body.emit(store)
                body.emit("_e ^= _b")
                body.depth -= 2
        for i, reg in enumerate(model.registers):
            body.emit(f"{py[reg.name]} = n_{i}")
        body.emit("done += 1")
        body.depth -= 1
        for reg in model.registers:
            body.emit(f"values[{reg.name!r}] = {py[reg.name]}")
        body.emit("ctl['active'] = active")
        body.emit("ctl['cycle'] = base + done")
        body.emit("return done")
        body.depth -= 1
        body.emit()

    emit_run("run", masked=True)
    if not model.stops:
        emit_run("run_full", masked=False)

    head = CodeBuilder()
    head.emit('"""Generated by repro.backends.swarm — do not edit."""')
    for line in RUNTIME_HELPERS.strip().splitlines():
        head.emit(line)
    head.emit()
    head.emit(f"_L = {lanes}")
    head.emit(f"_S = {stride}")
    head.emit("_R1 = ((1 << (_L * _S)) - 1) // ((1 << _S) - 1)")
    head.emit("_HALF = ((1 << (_S - 1)) - 1) * _R1")
    head.emit("_TOP = (1 << (_S - 1)) * _R1")
    head.emit("_SHS = _S - 1")
    for line in SWARM_RUNTIME_HELPERS.strip().splitlines():
        head.emit(line)
    head.emit()
    for line in emitter.prelude_lines():
        head.emit(line)
    head.emit()
    return head.source() + body.source()


class _SwarmPlan:
    """The exec'd packed closures for one (model, lanes) pair."""

    __slots__ = ("source", "settle", "run", "run_full", "lanes", "stride", "rep1")

    def __init__(self, source: str) -> None:
        self.source = source
        namespace: dict = {}
        exec(compile(source, "<generated-swarm>", "exec"), namespace)
        self.settle = namespace["settle"]
        self.run = namespace["run"]
        self.run_full = namespace.get("run_full")
        self.lanes = namespace["_L"]
        self.stride = namespace["_S"]
        self.rep1 = namespace["_R1"]


class SwarmSimulation:
    """``lanes`` independent simulations advancing in lock step.

    The scalar :class:`~repro.backends.api.Simulation` protocol applies
    with broadcast semantics: ``poke`` drives every lane, ``peek`` samples
    lane 0, ``cover_counts()`` returns the lane-merged aggregate.  The
    lane-addressed surface — ``poke_lane``/``poke_lanes``/``peek_lane``/
    ``cover_counts(lane)``/``retire_lane``/``lane_active``/``lane_stop``
    — is what batch harnesses (the fuzzer) drive.
    """

    def __init__(
        self,
        model: CircuitModel,
        counter_width: Optional[int] = None,
        plan: Optional[_SwarmPlan] = None,
    ) -> None:
        assert plan is not None
        self._model = model
        self._counter_width = counter_width
        self._plan = plan
        self.lanes = plan.lanes
        self._stride = plan.stride
        self._rep1 = plan.rep1
        self._values: dict[str, int] = {}
        self._mems: dict[str, list[list[int]]] = {
            m.name: [[0] * m.padded_depth for _ in range(self.lanes)]
            for m in model.memories
        }
        #: vertical counters: cover name -> list of bit planes
        self._counts: dict[str, list[int]] = {
            c.name: [] for c in model.covers
        }
        self._ctl: dict = {
            "active": plan.rep1,
            "cycle": 0,
            "stop_lane": [None] * self.lanes,
            "stop_cycle": [None] * self.lanes,
        }
        self._dirty = True
        self._input_names = {p.name for p in model.inputs}
        self._meter = StepMeter("swarm", lanes=self.lanes)
        for port in model.inputs:
            self._values[port.name] = 0
        for reg in model.registers:
            self._values[reg.name] = 0

    # -- broadcast (scalar-protocol) API -------------------------------------

    def poke(self, port: str, value: int) -> None:
        """Drive every lane of a top-level input with the same value."""
        width = self._check_input(port)
        self._values[port] = (value & mask(width)) * self._rep1
        self._dirty = True

    def peek(self, port: str) -> int:
        """Sample lane 0 of a top-level port."""
        return self.peek_lane(port, 0)

    def step(self, cycles: int = 1) -> StepResult:
        return metered_step(
            self._meter, lambda: self._step(cycles), lambda r: r.cycles
        )

    def cover_counts(self, lane: int = 0) -> CoverCounts:
        """Saturated cover counts for one lane (lane 0 by default).

        Defaulting to lane 0 keeps the scalar :class:`Simulation`
        protocol exact: under broadcast ``poke`` every lane sees the same
        stimulus, so lane 0 *is* the scalar run and swarm can stand in as
        a differential-runner leg.  Use :meth:`merged_cover_counts` for
        the campaign-wide view.
        """
        self._check_lane(lane)
        slot = lane * self._stride
        return {
            name: saturate(self._lane_count(planes, slot), self._counter_width)
            for name, planes in self._counts.items()
        }

    def merged_cover_counts(self) -> CoverCounts:
        """Cover counts merged across every lane.

        Follows :func:`~repro.coverage.common.merge_counts` semantics
        exactly — per-lane counts clamp to the counter width, their sum
        clamps again — so a swarm run merges transparently with scalar
        shards.
        """
        return {
            name: self._aggregate(planes)
            for name, planes in self._counts.items()
        }

    @property
    def stopped(self) -> bool:
        """Whether every lane has stopped or been retired."""
        return not self._ctl["active"]

    @property
    def cycle(self) -> int:
        """Clock cycles stepped so far (shared by every lane)."""
        return self._ctl["cycle"]

    def fork(self) -> "SwarmSimulation":
        """A fresh swarm of the same design (shares the compiled plan)."""
        return SwarmSimulation(self._model, self._counter_width, self._plan)

    # -- lane-addressed API ---------------------------------------------------

    def poke_lane(self, port: str, lane: int, value: int) -> None:
        """Drive one lane of a top-level input."""
        width = self._check_input(port)
        self._check_lane(lane)
        slot = lane * self._stride
        hole = self._values[port] & ~(mask(width) << slot)
        self._values[port] = hole | ((value & mask(width)) << slot)
        self._dirty = True

    def poke_lanes(self, port: str, values) -> None:
        """Drive the leading lanes of an input with per-lane values.

        Lanes beyond ``len(values)`` are driven to 0.
        """
        width = self._check_input(port)
        if len(values) > self.lanes:
            raise ValueError(
                f"{len(values)} values for {self.lanes}-lane swarm"
            )
        packed = 0
        slot = 0
        for value in values:
            packed |= (value & mask(width)) << slot
            slot += self._stride
        self._values[port] = packed
        self._dirty = True

    def peek_lane(self, port: str, lane: int) -> int:
        """Sample one lane of a top-level port as a raw bit pattern."""
        if port not in self._model.port_names:
            raise KeyError(f"no such port: {port}")
        self._check_lane(lane)
        self._settle()
        width = self._model.widths.get(port, 1)
        return (self._values.get(port, 0) >> (lane * self._stride)) & mask(width)

    def lane_active(self, lane: int) -> bool:
        """Whether a lane is still running (not stopped, not retired)."""
        self._check_lane(lane)
        return bool((self._ctl["active"] >> (lane * self._stride)) & 1)

    def lane_stop(self, lane: int):
        """``(stop_name, exit_code, cycle)`` for a stopped lane, else None."""
        self._check_lane(lane)
        index = self._ctl["stop_lane"][lane]
        if index is None:
            return None
        stop = self._model.stops[index]
        return (stop.name, stop.exit_code, self._ctl["stop_cycle"][lane])

    def retire_lane(self, lane: int) -> None:
        """Remove a lane from the active set (its counts freeze)."""
        self._check_lane(lane)
        self._ctl["active"] &= ~(1 << (lane * self._stride))

    # -- internals -------------------------------------------------------------

    def _check_input(self, port: str) -> int:
        width = self._model.widths.get(port)
        if width is None or port not in self._input_names:
            raise KeyError(f"no such input port: {port}")
        return width

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.lanes:
            raise IndexError(f"lane {lane} out of range [0, {self.lanes})")

    def _settle(self) -> None:
        if not self._dirty:
            return
        self._plan.settle(self._values, self._mems)
        self._dirty = False

    def _step(self, cycles: int) -> StepResult:
        if cycles <= 0:
            return StepResult(0)
        ctl = self._ctl
        if not ctl["active"]:
            return StepResult(0, True, *self._halt_info())
        run = self._plan.run
        if self._plan.run_full is not None and ctl["active"] == self._rep1:
            run = self._plan.run_full
        done = run(self._values, self._mems, self._counts, ctl, cycles)
        if done:
            self._dirty = True
        if not ctl["active"]:
            return StepResult(done, True, *self._halt_info())
        return StepResult(done)

    def _halt_info(self):
        for index in self._ctl["stop_lane"]:
            if index is not None:
                stop = self._model.stops[index]
                return (stop.name, stop.exit_code)
        return (None, 0)

    def _lane_count(self, planes: list[int], slot: int) -> int:
        count = 0
        for k, plane in enumerate(planes):
            count |= ((plane >> slot) & 1) << k
        return count

    def _aggregate(self, planes: list[int]) -> int:
        width = self._counter_width
        if width is None:
            # unbounded counters: the lane sum is a pure popcount reduction
            return sum(p.bit_count() << k for k, p in enumerate(planes))
        total = 0
        for lane in range(self.lanes):
            total += saturate(
                self._lane_count(planes, lane * self._stride), width
            )
        return saturate(total, width)


class SwarmBackend:
    """Factory for bit-parallel swarm simulations.

    ``lanes`` is the pack width (default 64 — one lane per host word bit
    is the classic swarm-testing sweet spot; anything up to
    :data:`MAX_LANES` works, larger packs amortize Python dispatch better
    until big-int arithmetic dominates).  ``cache`` overrides the
    process-default model cache; the lane count and swarm emitter version
    are part of the cache key, so differently-sized swarms never collide
    with each other or with the scalar backends.
    """

    name = "swarm"

    def __init__(
        self, lanes: int = 64, cache: Optional[ModelCache] = None
    ) -> None:
        if not 1 <= lanes <= MAX_LANES:
            raise ValueError(
                f"lanes must be in [1, {MAX_LANES}], got {lanes}"
            )
        self.lanes = lanes
        self._cache = cache

    def compile(self, circuit, counter_width: Optional[int] = None) -> SwarmSimulation:
        return self._compile(circuit, counter_width)

    def compile_state(self, state, counter_width: Optional[int] = None) -> SwarmSimulation:
        """Build a swarm simulation from an already-lowered CompileState."""
        return self._compile(state, counter_width)

    def _compile(self, circuit_or_state, counter_width) -> SwarmSimulation:
        def build() -> CacheEntry:
            with obs.span("compile", cat="compile", backend=self.name):
                model = build_model(circuit_or_state)
                source = generate_swarm_source(model, self.lanes)
            return CacheEntry(
                key="", backend=self.name, model=model, source=source
            )

        entry = compile_cached(
            circuit_or_state,
            self.name,
            build,
            cache=self._cache,
            options=(f"swarm{SWARM_EMITTER_VERSION}", f"lanes={self.lanes}"),
        )
        plan = entry.runtime.get("plan")
        if plan is None:
            source = entry.source or generate_swarm_source(
                entry.model, self.lanes
            )
            plan = entry.runtime["plan"] = _SwarmPlan(source)
        return SwarmSimulation(entry.model, counter_width, plan=plan)
