"""Cross-backend differential execution with quorum merging.

The paper's headline property — every backend keys its counts by the same
canonical hierarchical cover name (§3), so results "merge trivially" — is
also a free robustness oracle: the *same* job (same circuit, same
stimulus, same cycle count) run on two independent backends must produce
*identical* per-cover counts.  Namespace validation
(:mod:`~repro.runtime.validate`) catches detectably-corrupt shards; it is
blind to a Byzantine backend returning *plausible-but-wrong* counts —
right keys, non-negative in-range values, wrong numbers.  Disagreement
between independent backends pinpoints exactly that.

:class:`DifferentialRunner` executes one job on ≥2 backends through a
fault-tolerant :class:`~repro.runtime.executor.Executor`, compares the
per-cover counts of every leg that *completed*, and quorum-merges: for
each cover, the value a strict majority of legs agrees on wins.  Outvoted
backends land in a structured :class:`DisagreementReport` (per-cover,
per-backend deltas) and their contributions are quarantined.  With only
two legs a disagreement has no majority — it is still *detected* and
reported (``no_quorum``), but localising the liar takes a third leg.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..backends.api import CoverCounts
from .executor import Executor, RunJob, RunOutcome, Stimulus
from .telemetry import obs
from .validate import QuarantineReport, QuarantinedShard, ShardIssue, validate_shard_counts

#: value recorded for a backend that did not report a cover at all
MISSING = None


@dataclass
class CoverDisagreement:
    """One cover point the legs did not agree on."""

    cover: str
    values: dict[str, Optional[int]]  # backend -> reported count (None: missing)
    quorum_value: Optional[int] = None  # None: no strict majority

    @property
    def outvoted(self) -> list[str]:
        """Backends whose value lost the vote (empty without a quorum)."""
        if self.quorum_value is None:
            return []
        return sorted(b for b, v in self.values.items() if v != self.quorum_value)

    def format(self) -> str:
        votes = ", ".join(
            f"{backend}={'∅' if value is MISSING else value}"
            for backend, value in sorted(self.values.items())
        )
        verdict = (
            f"quorum={self.quorum_value}"
            if self.quorum_value is not None
            else "no quorum"
        )
        return f"{self.cover}: {votes} [{verdict}]"


@dataclass
class DisagreementReport:
    """Structured verdict of a differential run."""

    job_id: str
    backends: list[str] = field(default_factory=list)
    voters: list[str] = field(default_factory=list)  # legs that entered the vote
    excluded: dict[str, str] = field(default_factory=dict)  # backend -> reason
    disagreements: list[CoverDisagreement] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.disagreements and not self.excluded

    @property
    def outvoted(self) -> dict[str, list[str]]:
        """Backend -> covers on which it was outvoted by the quorum."""
        losers: dict[str, list[str]] = {}
        for disagreement in self.disagreements:
            for backend in disagreement.outvoted:
                losers.setdefault(backend, []).append(disagreement.cover)
        return losers

    @property
    def no_quorum(self) -> list[str]:
        """Covers where no strict majority emerged (tie or 2-leg split)."""
        return [d.cover for d in self.disagreements if d.quorum_value is None]

    def deltas(self, backend: str) -> dict[str, int]:
        """Per-cover (reported − quorum) deltas for one outvoted backend."""
        out: dict[str, int] = {}
        for disagreement in self.disagreements:
            if disagreement.quorum_value is None:
                continue
            value = disagreement.values.get(backend, MISSING)
            if value is not MISSING and value != disagreement.quorum_value:
                out[disagreement.cover] = value - disagreement.quorum_value
        return out

    def format(self) -> str:
        lines = [
            f"differential {self.job_id}: "
            f"{len(self.voters)}/{len(self.backends)} legs voted"
        ]
        for backend, reason in sorted(self.excluded.items()):
            lines.append(f"  excluded {backend}: {reason}")
        if not self.disagreements:
            lines.append("  all voting legs agree on every cover")
            return "\n".join(lines)
        lines.append(f"  {len(self.disagreements)} disagreeing cover(s):")
        lines += [f"    {d.format()}" for d in self.disagreements]
        for backend, covers in sorted(self.outvoted.items()):
            lines.append(
                f"  outvoted: {backend} on {len(covers)} cover(s): "
                + ", ".join(covers)
            )
        if self.no_quorum:
            lines.append(
                f"  no quorum on {len(self.no_quorum)} cover(s) "
                "(add a third backend to localise the fault)"
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "job_id": self.job_id,
                "backends": self.backends,
                "voters": self.voters,
                "excluded": self.excluded,
                "disagreements": [
                    {
                        "cover": d.cover,
                        "values": d.values,
                        "quorum_value": d.quorum_value,
                        "outvoted": d.outvoted,
                    }
                    for d in self.disagreements
                ],
                "outvoted": self.outvoted,
                "no_quorum": self.no_quorum,
            },
            indent=2,
            sort_keys=True,
        )


def quorum_merge(
    job_id: str,
    per_backend: dict[str, CoverCounts],
    backends: Optional[Iterable[str]] = None,
) -> tuple[CoverCounts, DisagreementReport]:
    """Majority-vote per cover across the backends' count maps.

    Returns the quorum-agreed counts plus the report.  A cover enters the
    merged map only with a strict majority; covers with no quorum are
    withheld (merging either candidate would launder the disagreement).
    """
    voters = sorted(per_backend)
    report = DisagreementReport(
        job_id=job_id,
        backends=sorted(backends) if backends is not None else list(voters),
        voters=list(voters),
    )
    merged: CoverCounts = {}
    covers = sorted({c for counts in per_backend.values() for c in counts})
    majority = len(voters) // 2 + 1
    for cover in covers:
        values = {b: per_backend[b].get(cover, MISSING) for b in voters}
        tally = Counter(values.values())
        winner, votes = tally.most_common(1)[0] if tally else (MISSING, 0)
        if votes >= majority and winner is not MISSING:
            merged[cover] = winner
            if votes < len(voters):
                disagreement = CoverDisagreement(
                    cover, values, quorum_value=winner
                )
                report.disagreements.append(disagreement)
                if obs.enabled:
                    obs.inc("repro_quorum_covers_total", verdict="outvoted")
                    for backend in disagreement.outvoted:
                        obs.inc("repro_outvoted_covers_total", backend=backend)
            elif obs.enabled:
                obs.inc("repro_quorum_covers_total", verdict="unanimous")
        else:
            report.disagreements.append(
                CoverDisagreement(cover, values, quorum_value=None)
            )
            if obs.enabled:
                obs.inc("repro_quorum_covers_total", verdict="no-quorum")
    return merged, report


@dataclass
class DifferentialResult:
    """Outcome of one differential run: legs, quorum counts, verdicts."""

    job_id: str
    outcomes: dict[str, RunOutcome]
    merged: CoverCounts
    report: DisagreementReport
    quarantine: QuarantineReport

    @property
    def agreed(self) -> bool:
        return self.report.clean

    def format(self) -> str:
        lines = []
        for backend, outcome in sorted(self.outcomes.items()):
            lines.append(
                f"{outcome.job_id}: {outcome.status} after "
                f"{outcome.attempts} attempt(s), {outcome.cycles_run} cycles"
            )
        lines.append(self.report.format())
        if not self.quarantine.clean:
            lines.append(self.quarantine.format())
        covered = sum(1 for c in self.merged.values() if c)
        lines.append(f"quorum coverage: {covered}/{len(self.merged)} points hit")
        return "\n".join(lines)


class DifferentialRunner:
    """Runs one job on several backends and quorum-merges the counts."""

    def __init__(self, executor: Optional[Executor] = None) -> None:
        self.executor = executor or Executor()

    def run(
        self,
        job_id: str,
        make_sims: dict[str, Callable[[], object]],
        cycles: int,
        stimulus: Optional[Stimulus] = None,
        reset_cycles: int = 1,
        known_names: Optional[Iterable[str]] = None,
        counter_width: Optional[int] = None,
    ) -> DifferentialResult:
        """Execute ``job_id`` once per backend in ``make_sims`` and vote.

        Every factory must replay *identical* stimulus (seeded RNGs reset
        per attempt) or honest backends will disagree with each other.
        Legs that fail validation against ``known_names``/``counter_width``
        are quarantined and excluded from the vote, as are legs that did
        not run to completion (a partial leg's lower counts are legitimate,
        not Byzantine).  Outvoted backends are quarantined with per-cover
        evidence.
        """
        if len(make_sims) < 2:
            raise ValueError(
                f"differential execution needs >= 2 backends, got {len(make_sims)}"
            )
        quarantine = QuarantineReport()
        outcomes: dict[str, RunOutcome] = {}
        votable: dict[str, CoverCounts] = {}
        excluded: dict[str, str] = {}
        names = set(known_names) if known_names is not None else None
        for backend, make_sim in sorted(make_sims.items()):
            job = RunJob(
                job_id=f"{job_id}@{backend}",
                backend_name=backend,
                make_sim=make_sim,
                cycles=cycles,
                stimulus=stimulus,
                reset_cycles=reset_cycles,
            )
            outcome = self.executor.run_job(job)
            outcomes[backend] = outcome
            if outcome.status != "ok":
                excluded[backend] = (
                    f"leg did not complete (status: {outcome.status})"
                )
                continue
            issues = validate_shard_counts(outcome.counts, names, counter_width)
            if issues:
                excluded[backend] = "failed shard validation"
                quarantine.quarantined.append(
                    QuarantinedShard(job.job_id, backend, issues)
                )
                continue
            votable[backend] = outcome.counts
        merged, report = quorum_merge(job_id, votable, backends=make_sims)
        report.excluded.update(excluded)
        for backend, covers in report.outvoted.items():
            quarantine.quarantined.append(
                QuarantinedShard(
                    job_id=f"{job_id}@{backend}",
                    backend=backend,
                    issues=[
                        ShardIssue(
                            "outvoted",
                            cover,
                            f"reported {self._reported(report, backend, cover)} "
                            f"but the quorum agreed on "
                            f"{self._quorum_value(report, cover)}",
                        )
                        for cover in covers
                    ],
                )
            )
        for backend in votable:
            if backend not in report.outvoted:
                quarantine.merged_job_ids.append(f"{job_id}@{backend}")
        return DifferentialResult(job_id, outcomes, merged, report, quarantine)

    @staticmethod
    def _reported(report: DisagreementReport, backend: str, cover: str):
        for d in report.disagreements:
            if d.cover == cover:
                value = d.values.get(backend, MISSING)
                return "nothing" if value is MISSING else value
        return "?"

    @staticmethod
    def _quorum_value(report: DisagreementReport, cover: str):
        for d in report.disagreements:
            if d.cover == cover:
                return d.quorum_value
        return None
