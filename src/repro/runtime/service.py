"""Coverage-as-a-service: the ``repro serve`` campaign daemon.

Turns the one-shot CLI pipeline into a long-running, multi-tenant
runtime: tenants POST campaign specs over a JSON/HTTP API (stdlib
asyncio, no dependencies), a scheduler multiplexes accepted campaigns
over a bounded worker pool with per-tenant fairness and priorities, and
every accepted campaign survives ``kill -9`` because each state
transition is fsync'd into a write-ahead journal
(:mod:`~repro.runtime.journal`) *before* it is acknowledged.

The robustness contract:

* **Crash safety** — a campaign is acknowledged only after its submit
  record is durable.  On restart the daemon replays the journal,
  re-adopts finished campaigns' counts from their complete checkpoint
  shards (:class:`~repro.runtime.checkpoint.Checkpointer`), and requeues
  every in-flight campaign; seeded stimulus makes the re-run
  bit-identical, so recovery converges on exactly the counts an
  uninterrupted run would have produced.
* **Admission control** — the queue is bounded and per-tenant quotas
  apply; a full queue is an explicit 429-style rejection, never
  unbounded memory.
* **Deadline propagation** — a campaign's ``deadline_s`` becomes the
  executor's per-attempt watchdog budget; under process isolation that
  is a worker SIGKILL.
* **Graceful drain** — SIGTERM stops admission (503), lets running
  campaigns finish (or interrupts them at a cycle boundary after the
  grace period, leaving their checkpoints for the next start), journals
  a ``clean-shutdown`` record, and exits.
* **Graceful degradation** — when a backend's circuit breaker
  (:class:`~repro.runtime.breaker.BreakerBoard`) is open, its campaigns
  are *deferred* (kept queued, retried after the breaker's probe
  window), not failed.
* **Scale-out** — with ``--cluster-port`` the service embeds a
  :class:`~repro.runtime.cluster.ClusterCoordinator` and prefers
  dispatching campaigns to remote workers under lease-fenced grants,
  merging their streamed count deltas into a live partial-report view;
  zero attached workers degrades back to the local thread pool.

Endpoints: ``POST /submit``, ``GET /status/<id>``, ``GET /campaigns``,
``POST /cancel/<id>``, ``GET /report/<id>``, ``GET /metrics``
(Prometheus text), ``GET /healthz``.
"""

from __future__ import annotations

import asyncio
import json
import logging
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Optional

from .breaker import BreakerBoard
from .checkpoint import Checkpointer, Shard
from .cluster import ClusterCoordinator, LiveCoverage
from .executor import Executor, RunJob
from .journal import Journal
from .telemetry import obs

logger = logging.getLogger(__name__)

#: campaign spec schema version carried in submit records
SPEC_VERSION = 1

KNOWN_METRICS = ("line", "toggle", "fsm", "ready_valid", "mux_toggle")

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL = (DONE, FAILED, CANCELLED)


class SpecError(ValueError):
    """A submitted campaign spec is malformed (HTTP 400)."""


class CampaignCancelled(Exception):
    """Raised inside the drive loop when a campaign's cancel flag is set."""


@dataclass
class CampaignSpec:
    """What one tenant asks the service to run.

    ``circuit`` is the textual IR of an (optionally pre-instrumented)
    circuit; ``metrics`` asks the service to instrument it first.
    ``deadline_s`` caps each attempt's wall clock (under process
    isolation, by SIGKILL).  Higher ``priority`` schedules earlier.
    """

    tenant: str
    circuit: str
    backend: str = "treadle"
    cycles: int = 1000
    metrics: tuple[str, ...] = ()
    seed: int = 0
    random_inputs: bool = True
    priority: int = 0
    deadline_s: Optional[float] = None
    reset_cycles: int = 1
    counter_width: Optional[int] = None
    checkpoint_every: int = 0
    #: count only the minimal cover basis; shards, WAL records, and
    #: cluster delta streams then carry fewer counters, and the final
    #: counts are reconstructed (bit-identical) before being reported
    min_instrument: bool = False

    def to_json_obj(self) -> dict:
        return {
            "version": SPEC_VERSION,
            "tenant": self.tenant,
            "circuit": self.circuit,
            "backend": self.backend,
            "cycles": self.cycles,
            "metrics": list(self.metrics),
            "seed": self.seed,
            "random_inputs": self.random_inputs,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "reset_cycles": self.reset_cycles,
            "counter_width": self.counter_width,
            "checkpoint_every": self.checkpoint_every,
            "min_instrument": self.min_instrument,
        }

    @staticmethod
    def from_json_obj(data) -> "CampaignSpec":
        from ..backends import BACKENDS

        if not isinstance(data, dict):
            raise SpecError(f"spec must be a JSON object, got {type(data).__name__}")

        def pick(key, kind, default, *, required=False):
            value = data.get(key, default)
            if required and (value is None or value == ""):
                raise SpecError(f"spec field {key!r} is required")
            if value is None and default is None:
                return None
            if kind is float and isinstance(value, int):
                value = float(value)
            if not isinstance(value, kind) or isinstance(value, bool) and kind is int:
                raise SpecError(
                    f"spec field {key!r}: expected {kind.__name__}, "
                    f"got {type(value).__name__}"
                )
            return value

        tenant = pick("tenant", str, "anon") or "anon"
        circuit = pick("circuit", str, None, required=True)
        backend = pick("backend", str, "treadle")
        if backend not in BACKENDS:
            raise SpecError(
                f"unknown backend {backend!r} (have: {', '.join(sorted(BACKENDS))})"
            )
        cycles = pick("cycles", int, 1000)
        if cycles <= 0:
            raise SpecError(f"cycles must be positive, got {cycles}")
        metrics_raw = data.get("metrics", [])
        if not isinstance(metrics_raw, list) or not all(
            isinstance(m, str) for m in metrics_raw
        ):
            raise SpecError("spec field 'metrics': expected a list of strings")
        unknown = sorted(set(metrics_raw) - set(KNOWN_METRICS))
        if unknown:
            raise SpecError(
                f"unknown metrics {', '.join(unknown)} "
                f"(have: {', '.join(KNOWN_METRICS)})"
            )
        deadline = pick("deadline_s", float, None)
        if deadline is not None and deadline <= 0:
            raise SpecError(f"deadline_s must be positive, got {deadline}")
        reset_cycles = pick("reset_cycles", int, 1)
        if reset_cycles < 0:
            raise SpecError("reset_cycles must be >= 0")
        checkpoint_every = pick("checkpoint_every", int, 0)
        if checkpoint_every < 0:
            raise SpecError("checkpoint_every must be >= 0")
        counter_width = pick("counter_width", int, None)
        if counter_width is not None and counter_width <= 0:
            raise SpecError("counter_width must be positive")
        # The circuit must at least parse — reject garbage at the door
        # with a 400 instead of failing the campaign later.
        from ..ir import parse_circuit

        try:
            parse_circuit(circuit)
        except Exception as error:
            raise SpecError(f"circuit does not parse: {error}") from None
        return CampaignSpec(
            tenant=tenant,
            circuit=circuit,
            backend=backend,
            cycles=cycles,
            metrics=tuple(metrics_raw),
            seed=pick("seed", int, 0),
            random_inputs=bool(data.get("random_inputs", True)),
            priority=pick("priority", int, 0),
            deadline_s=deadline,
            reset_cycles=reset_cycles,
            counter_width=counter_width,
            checkpoint_every=checkpoint_every,
            min_instrument=bool(data.get("min_instrument", False)),
        )


@dataclass
class Campaign:
    """One accepted campaign's live state inside the service."""

    id: str
    seq: int
    spec: CampaignSpec
    status: str = QUEUED
    detail: str = ""
    counts: Optional[dict] = None
    cycles_run: int = 0
    attempts: int = 0
    not_before: float = 0.0  # monotonic; breaker-deferral backoff
    cancel_event: threading.Event = field(default_factory=threading.Event)
    cancel_reason: str = ""
    #: streaming partial counts while RUNNING (local or merged deltas)
    live: Optional[LiveCoverage] = None
    remote: bool = False       # currently leased to a cluster worker
    worker: str = ""           # the leased worker's id (diagnostic)
    lease_token: int = 0       # current fencing token (diagnostic)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL

    def to_public(self) -> dict:
        out = {
            "id": self.id,
            "tenant": self.spec.tenant,
            "backend": self.spec.backend,
            "cycles": self.spec.cycles,
            "priority": self.spec.priority,
            "status": self.status,
            "detail": self.detail,
            "cycles_run": self.cycles_run,
            "attempts": self.attempts,
        }
        if self.remote and self.worker:
            out["worker"] = self.worker
        if self.counts is not None:
            out["covered"] = sum(1 for c in self.counts.values() if c)
            out["points"] = len(self.counts)
        return out


@dataclass
class ExecutionOutcome:
    """What one campaign execution produced (worker-thread result)."""

    status: str  # done | failed | interrupted
    detail: str = ""
    counts: Optional[dict] = None
    cycles_run: int = 0
    attempts: int = 0
    backend_ok: bool = False  # feeds the breaker


def execute_spec(
    spec: CampaignSpec,
    campaign_id: str,
    checkpointer: Checkpointer,
    *,
    cancel_event: Optional[threading.Event] = None,
    isolation: str = "thread",
    timeout: Optional[float] = None,
    retries: int = 0,
    progress=None,
) -> ExecutionOutcome:
    """Run one campaign spec to completion (or interruption).

    Deterministic by construction: the stimulus RNG is re-seeded from
    ``spec.seed`` at every attempt, so any two runs of the same spec —
    including a post-crash re-run — produce bit-identical counts.
    ``resume`` is always on: a complete shard left by a previous life of
    the daemon is adopted instead of re-run.

    ``progress`` (optional ``fn(job_id, cycle, counts)``) is forwarded to
    the executor's checkpoint-boundary hook — the seam the service's live
    partial reports and the cluster workers' delta streams hang off.

    Shared by the service scheduler, the cluster worker, and tests
    computing reference counts (the bit-identical recovery check *is*
    this function run twice).
    """
    from ..backends import BACKENDS
    from ..coverage import all_cover_names, instrument
    from ..coverage.common import InstanceTree
    from ..ir import parse_circuit

    circuit = parse_circuit(spec.circuit)
    min_db = None
    if spec.metrics:
        state, db = instrument(
            circuit, metrics=list(spec.metrics), minimize=spec.min_instrument
        )
        circuit = state.circuit
        if spec.min_instrument:
            min_db = db
    elif spec.min_instrument:
        from ..analysis.implication import minimize_circuit

        state, min_db = minimize_circuit(circuit)
        circuit = state.circuit
    names = all_cover_names(circuit)

    def reconstruct(counts: dict) -> dict:
        # shards/WAL/deltas carried basis counters only; rebuild the
        # elided covers so the service API stays bit-identical
        if min_db is None:
            return dict(counts)
        return min_db.reconstruct_counts(
            counts, InstanceTree(circuit), counter_width=spec.counter_width
        )
    backend = BACKENDS[spec.backend]()
    rng = random.Random(spec.seed)
    inputs = [
        p.name for p in circuit.top.inputs if p.name not in ("clock", "reset")
    ]
    widths = {p.name: getattr(p.type, "width", 1) for p in circuit.top.inputs}

    def stimulus(sim, cycle):
        if cancel_event is not None and cancel_event.is_set():
            raise CampaignCancelled(campaign_id)
        if spec.random_inputs:
            for name in inputs:
                sim.poke(name, rng.getrandbits(widths.get(name, 1) or 1))

    def make_sim():
        rng.seed(spec.seed)  # every attempt replays the same stimulus
        return backend.compile(circuit, counter_width=spec.counter_width)

    executor = Executor(
        timeout=spec.deadline_s if spec.deadline_s is not None else timeout,
        retries=retries,
        checkpointer=checkpointer,
        isolation=isolation,
        tenant=spec.tenant,
        campaign=campaign_id,
        progress=progress,
    )
    job = RunJob(
        job_id=campaign_id,
        backend_name=spec.backend,
        make_sim=make_sim,
        cycles=spec.cycles,
        stimulus=stimulus,
        reset_cycles=spec.reset_cycles,
    )
    result = executor.run_campaign(
        [job],
        known_names=names,
        counter_width=spec.counter_width,
        resume=True,
    )
    outcome = result.outcomes[0]
    if cancel_event is not None and cancel_event.is_set():
        return ExecutionOutcome(
            status="interrupted",
            detail="cancelled at a cycle boundary",
            cycles_run=outcome.cycles_run,
            attempts=outcome.attempts,
        )
    if outcome.status in ("ok", "resumed"):
        if not result.quarantine.merged_job_ids and names:
            return ExecutionOutcome(
                status=FAILED,
                detail="every shard was quarantined",
                attempts=outcome.attempts,
            )
        return ExecutionOutcome(
            status=DONE,
            detail="resumed from complete shard" if outcome.status == "resumed" else "",
            counts=reconstruct(result.merged),
            cycles_run=outcome.cycles_run,
            attempts=outcome.attempts,
            backend_ok=True,
        )
    detail = "; ".join(f.format() for f in outcome.failures[-2:]) or outcome.status
    partial = reconstruct(result.merged) if outcome.contributed else None
    return ExecutionOutcome(
        status=FAILED,
        detail=(f"partial ({outcome.cycles_run} cycles salvaged): {detail}"
                if outcome.status == "partial" else detail),
        counts=partial,
        cycles_run=outcome.cycles_run,
        attempts=outcome.attempts,
    )


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune (see the README flag table)."""

    state_dir: Path
    host: str = "127.0.0.1"
    port: int = 0
    max_workers: int = 2
    max_queue: int = 64
    tenant_quota: int = 16
    journal_fsync: bool = True
    compact_every: int = 256
    isolation: str = "thread"
    default_timeout: Optional[float] = None
    retries: int = 0
    checkpoint_every: int = 500
    breaker_threshold: int = 3
    breaker_retry_s: float = 0.25
    drain_grace: float = 30.0
    max_body_bytes: int = 8 << 20
    model_cache_dir: Optional[str] = None
    telemetry: bool = True
    #: default ``min_instrument`` for submitted specs that omit the key
    min_instrument: bool = False
    #: TCP port for the cluster coordinator (None = no cluster, 0 = auto)
    cluster_port: Optional[int] = None
    #: remote shard lease duration; a worker silent this long is presumed
    #: dead and its shard is re-dispatched under a new fencing token
    lease_s: float = 10.0
    #: heartbeat period handed to workers in the welcome frame
    cluster_heartbeat_s: float = 2.0
    #: Retry-After hint (seconds) stamped on 429/503 rejections
    retry_after_s: float = 1.0
    #: auto-compact the WAL once it grows past this many bytes (0 = off)
    compact_max_bytes: int = 4 << 20

    def __post_init__(self) -> None:
        self.state_dir = Path(self.state_dir)
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1")
        if self.lease_s <= 0:
            raise ValueError("lease_s must be positive")
        if self.cluster_heartbeat_s <= 0:
            raise ValueError("cluster_heartbeat_s must be positive")
        if self.retry_after_s < 0:
            raise ValueError("retry_after_s must be >= 0")
        if self.compact_max_bytes < 0:
            raise ValueError("compact_max_bytes must be >= 0")


class CoverageService:
    """The daemon: HTTP front end, fair scheduler, WAL-backed state."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.campaigns: dict[str, Campaign] = {}
        self.breakers = BreakerBoard(
            failure_threshold=max(1, config.breaker_threshold)
        )
        self.journal: Optional[Journal] = None
        self.recovery: dict = {}
        self.port: Optional[int] = None
        self.cluster: Optional[ClusterCoordinator] = None
        self.cluster_port: Optional[int] = None
        self._next_fence = 1  # monotonic fencing-token allocator (journaled)
        self._queue: list[Campaign] = []
        self._running: dict[str, Campaign] = {}
        self._tenant_served: dict[str, int] = {}
        self._next_seq = 1
        self._draining = False
        self._stopping = False
        self._pause_dispatch = False  # test seam: hold the queue still
        self._records_since_compact = 0
        self._clean_shutdown_seen = False
        self._pool = ThreadPoolExecutor(
            max_workers=config.max_workers,
            thread_name_prefix="repro-serve",
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._wake: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Recover state from the journal, then start serving."""
        if self.config.telemetry:
            obs.enable()
        if self.config.model_cache_dir:
            from ..backends import ModelCache, set_default_cache

            set_default_cache(ModelCache(self.config.model_cache_dir))
        self.config.state_dir.mkdir(parents=True, exist_ok=True)
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        self._recover()
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.cluster_port is not None:
            # After _recover(): the coordinator's lease table starts its
            # fencing tokens at the journaled next_fence watermark.
            self.cluster = ClusterCoordinator(self)
            await self.cluster.start()
            self.cluster_port = self.cluster.port
        self._scheduler_task = asyncio.create_task(self._scheduler_loop())
        logger.info(
            "serving on %s:%d (state: %s, recovered: %s)",
            self.config.host, self.port, self.config.state_dir, self.recovery,
        )

    async def run(self) -> None:
        """CLI entry point: serve until SIGTERM/SIGINT drains us."""
        await self.start()
        print(
            f"repro serve: listening on http://{self.config.host}:{self.port}",
            flush=True,
        )
        if self.cluster_port is not None:
            print(
                f"repro serve: cluster coordinator on "
                f"{self.config.host}:{self.cluster_port}",
                flush=True,
            )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self._drain_and_stop())
                )
            except NotImplementedError:  # pragma: no cover — non-POSIX loop
                pass
        await self._stopped.wait()

    def start_in_thread(self, timeout: float = 30.0) -> "CoverageService":
        """Run the service on a background thread (tests, examples).

        Returns once the HTTP socket is bound; ``self.port`` is then
        valid.  Stop with :meth:`shutdown`.
        """
        started = threading.Event()
        failure: list[BaseException] = []

        async def body():
            try:
                await self.start()
            except BaseException as error:  # surface bind/recovery failures
                failure.append(error)
                started.set()
                return
            started.set()
            await self._stopped.wait()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(body()), daemon=True,
            name="repro-serve-loop",
        )
        self._thread.start()
        if not started.wait(timeout):
            raise RuntimeError("service failed to start within the timeout")
        if failure:
            raise failure[0]
        return self

    def shutdown(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop a threaded service.

        ``drain=True`` is the SIGTERM path: stop admitting, finish or
        interrupt in-flight campaigns, journal ``clean-shutdown``.
        ``drain=False`` aborts without the clean-shutdown record — the
        in-process stand-in for ``kill -9`` in recovery tests.
        """
        if self._loop is None or self._thread is None:
            return
        try:
            if drain:
                self._loop.call_soon_threadsafe(
                    lambda: asyncio.ensure_future(self._drain_and_stop())
                )
            else:
                self._loop.call_soon_threadsafe(self._abort)
        except RuntimeError:
            pass  # loop already closed: shutdown is idempotent
        self._thread.join(timeout)

    async def _drain_and_stop(self) -> None:
        """Graceful drain: the SIGTERM semantics (§12 in DESIGN.md)."""
        if self._draining:
            return
        self._draining = True
        logger.info(
            "draining: %d running, %d queued", len(self._running),
            len(self._queue),
        )
        deadline = time.monotonic() + self.config.drain_grace
        while self._running and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        if self._running:
            # Past grace: interrupt at the next cycle boundary.  The
            # campaigns stay journaled as in-flight and resume next start.
            for campaign in list(self._running.values()):
                if campaign.remote:
                    # Remote shards are revoked, not waited for: the
                    # journaled submit record resumes them next start.
                    if self.cluster is not None:
                        self.cluster.revoke(campaign.id, "drain")
                    self._running.pop(campaign.id, None)
                    campaign.status = QUEUED
                    campaign.detail = (
                        "interrupted by drain; will resume on restart"
                    )
                    campaign.remote = False
                    campaign.live = None
                    self._queue.append(campaign)
                    continue
                campaign.cancel_reason = "drain"
                campaign.cancel_event.set()
            hard_deadline = time.monotonic() + 10.0
            while self._running and time.monotonic() < hard_deadline:
                await asyncio.sleep(0.05)
        try:
            self.journal.append({
                "type": "clean-shutdown",
                "queued": sorted(c.id for c in self._queue),
            })
        except Exception:
            logger.exception("clean-shutdown record failed")
        self._abort()

    def _abort(self) -> None:
        """Tear down the loop side without touching the journal."""
        self._stopping = True
        if self.cluster is not None:
            self.cluster.close()
        if self._server is not None:
            self._server.close()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
        if self.journal is not None:
            self.journal.close()
        self._pool.shutdown(wait=False, cancel_futures=True)
        if self._stopped is not None:
            self._stopped.set()

    # -- recovery --------------------------------------------------------------

    def shard_dir(self, campaign_id: str) -> Path:
        return self.config.state_dir / "shards" / campaign_id

    def _checkpointer(self, campaign: Campaign) -> Checkpointer:
        return Checkpointer(
            self.shard_dir(campaign.id),
            every=campaign.spec.checkpoint_every or self.config.checkpoint_every,
            fsync=True,
            campaign=campaign.id,
        )

    def _recover(self) -> None:
        """Replay the journal and rebuild the campaign table.

        Crash-recovery invariant: the executor persists a campaign's
        complete shard *before* the service journals its ``finish``
        record, so every journal state is recoverable — a crash between
        the two leaves an in-flight campaign whose ``resume`` adopts the
        complete shard and re-journals the same terminal state.
        """
        self.journal = Journal(
            self.config.state_dir / "journal.wal",
            fsync=self.config.journal_fsync,
            auto_compact_bytes=self.config.compact_max_bytes,
            snapshot_provider=self._snapshot_record,
        )
        replayed = self.journal.recovered
        for record in replayed.records:
            self._apply_record(record)
        adopted = requeued = lost = 0
        for campaign in sorted(self.campaigns.values(), key=lambda c: c.seq):
            if campaign.status == DONE:
                shard = self._load_complete_shard(campaign.id)
                if shard is not None:
                    campaign.counts = dict(shard.counts)
                    adopted += 1
                    if obs.enabled:
                        obs.inc("repro_serve_recovered_campaigns_total",
                                outcome="adopted")
                else:
                    # Journal says done but the shard is gone/corrupt:
                    # re-run deterministically rather than lose the job.
                    campaign.status = QUEUED
                    campaign.detail = "requeued: finished shard unreadable"
                    campaign.counts = None
                    self._enqueue(campaign, recovering=True)
                    requeued += 1
            elif campaign.terminal:
                adopted += 1
            else:
                campaign.status = QUEUED
                if not campaign.detail:
                    campaign.detail = "requeued after restart"
                self._enqueue(campaign, recovering=True)
                requeued += 1
                if obs.enabled:
                    obs.inc("repro_serve_recovered_campaigns_total",
                            outcome="requeued")
        self.recovery = {
            "replayed_records": len(replayed.records),
            "torn_tail": replayed.torn,
            "clean_shutdown": self._clean_shutdown_seen,
            "adopted": adopted,
            "requeued": requeued,
            "lost": lost,  # structurally zero: every submit is journaled
        }

    def _apply_record(self, record: dict) -> None:
        kind = record.get("type")
        if kind == "submit":
            try:
                spec = CampaignSpec.from_json_obj(record.get("spec"))
            except SpecError as error:  # journal from a newer/older schema
                logger.warning("skipping unreplayable submit record: %s", error)
                return
            campaign = Campaign(
                id=str(record.get("id")), seq=int(record.get("seq", 0)),
                spec=spec,
            )
            self.campaigns[campaign.id] = campaign
            self._next_seq = max(self._next_seq, campaign.seq + 1)
        elif kind == "finish":
            campaign = self.campaigns.get(str(record.get("id")))
            if campaign is not None:
                campaign.status = str(record.get("status", FAILED))
                campaign.detail = str(record.get("detail", ""))
                campaign.cycles_run = int(record.get("cycles_run", 0))
                campaign.attempts = int(record.get("attempts", 0))
        elif kind == "lease":
            # A fencing token was armed before this journal life ended;
            # the next token must land strictly above it, or a zombie
            # holder could collide with a fresh grant.
            self._next_fence = max(
                self._next_fence, int(record.get("token", 0)) + 1
            )
        elif kind == "clean-shutdown":
            self._clean_shutdown_seen = True
        elif kind == "snapshot":
            self.campaigns.clear()
            self._next_seq = max(1, int(record.get("next_seq", 1)))
            self._next_fence = max(
                self._next_fence, int(record.get("next_fence", 1))
            )
            for entry in record.get("campaigns", []):
                self._apply_record(dict(entry, type="submit"))
                if entry.get("status") in TERMINAL:
                    self._apply_record(dict(entry, type="finish"))
        else:
            logger.warning("unknown journal record type %r ignored", kind)

    def _load_complete_shard(self, campaign_id: str):
        try:
            shard = Checkpointer(self.shard_dir(campaign_id)).load(campaign_id)
        except Exception:
            return None
        return shard if shard is not None and shard.complete else None

    def _snapshot_record(self) -> dict:
        entries = []
        for campaign in sorted(self.campaigns.values(), key=lambda c: c.seq):
            entry = {
                "id": campaign.id,
                "seq": campaign.seq,
                "status": campaign.status,
                "detail": campaign.detail,
                "cycles_run": campaign.cycles_run,
                "attempts": campaign.attempts,
                "spec": campaign.spec.to_json_obj(),
            }
            entries.append(entry)
        return {
            "type": "snapshot",
            "next_seq": self._next_seq,
            "next_fence": self._next_fence,
            "campaigns": entries,
        }

    def _maybe_compact(self) -> None:
        self._records_since_compact += 1
        if self._records_since_compact < self.config.compact_every:
            return
        try:
            self.journal.compact(self._snapshot_record())
            self._records_since_compact = 0
        except Exception:
            logger.exception("journal compaction failed; appends continue")

    def _journal_lease(self, campaign_id: str, worker_id: str,
                       token: int) -> bool:
        """Durably arm a fencing token *before* the grant can exist.

        Write-ahead for fencing: if this append fails the grant never
        happens; if it succeeds and the coordinator dies, recovery
        restarts token allocation strictly above it.  Returns False on
        journal trouble (the caller falls back to the local pool).
        """
        try:
            self.journal.append({
                "type": "lease",
                "id": campaign_id,
                "worker": worker_id,
                "token": token,
            })
        except Exception:
            logger.exception(
                "campaign %s: lease record failed; not granting", campaign_id
            )
            return False
        self._next_fence = max(self._next_fence, token + 1)
        self._maybe_compact()
        return True

    # -- admission & scheduling ------------------------------------------------

    def _tenant_load(self, tenant: str) -> int:
        return sum(
            1 for c in self._queue if c.spec.tenant == tenant
        ) + sum(1 for c in self._running.values() if c.spec.tenant == tenant)

    def admission_reason(self, tenant: str) -> Optional[str]:
        """Why a submit from ``tenant`` must be refused (None = admit)."""
        if self._draining or self._stopping:
            return "draining"
        if len(self._queue) >= self.config.max_queue:
            return "queue-full"
        if self._tenant_load(tenant) >= self.config.tenant_quota:
            return "tenant-quota"
        return None

    def _enqueue(self, campaign: Campaign, recovering: bool = False) -> None:
        self._queue.append(campaign)
        self._gauge_queue(campaign.spec.tenant)
        if not recovering and self._wake is not None:
            self._wake.set()

    def _gauge_queue(self, tenant: str) -> None:
        if obs.enabled:
            depth = sum(1 for c in self._queue if c.spec.tenant == tenant)
            obs.set_gauge("repro_serve_queue_depth", depth, tenant=tenant)

    def pick_next(self) -> Optional[Campaign]:
        """The queued campaign the scheduler should run next.

        Order: highest priority first; within a priority band, the tenant
        with the least in-flight work, then the least-recently-served
        tenant, then submission order — per-tenant fairness that a
        flooding tenant cannot starve.  Campaigns whose backend breaker
        refuses them are deferred in place (kept queued with a retry
        backoff), not failed: degraded-mode queueing.
        """
        now = time.monotonic()
        running_by_tenant: dict[str, int] = {}
        for c in self._running.values():
            running_by_tenant[c.spec.tenant] = (
                running_by_tenant.get(c.spec.tenant, 0) + 1
            )
        eligible = sorted(
            (c for c in self._queue if c.not_before <= now),
            key=lambda c: (
                -c.spec.priority,
                running_by_tenant.get(c.spec.tenant, 0),
                self._tenant_served.get(c.spec.tenant, 0),
                c.seq,
            ),
        )
        for campaign in eligible:
            if not self.breakers.allow(campaign.spec.backend):
                campaign.not_before = now + self.config.breaker_retry_s
                campaign.detail = (
                    f"deferred: circuit breaker open for {campaign.spec.backend}"
                )
                if obs.enabled:
                    obs.inc("repro_serve_breaker_deferrals_total",
                            backend=campaign.spec.backend)
                continue
            return campaign
        return None

    async def _scheduler_loop(self) -> None:
        try:
            while not self._stopping:
                if self.cluster is not None:
                    self.cluster.tick()
                self._dispatch_ready()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=0.1)
                except asyncio.TimeoutError:
                    pass
                self._wake.clear()
        except asyncio.CancelledError:
            pass

    def _local_running(self) -> int:
        """In-flight campaigns occupying local thread-pool slots."""
        return sum(1 for c in self._running.values() if not c.remote)

    def _dispatch_ready(self) -> None:
        """Drain the queue onto remote workers first, local slots second.

        Remote capacity is preferred (it is usually the larger pool and
        keeps the local slots free for when the fleet shrinks); with zero
        workers attached this degrades to exactly the pre-cluster local
        scheduling.  A failed grant (journal trouble) falls back to a
        local slot in the same pass.
        """
        if self._draining or self._pause_dispatch:
            return
        while True:
            worker = (
                self.cluster.pick_worker() if self.cluster is not None
                else None
            )
            local_free = self._local_running() < self.config.max_workers
            if worker is None and not local_free:
                return
            campaign = self.pick_next()
            if campaign is None:
                return
            if worker is not None and self._dispatch_remote(campaign, worker):
                continue
            if not local_free:
                return
            self._dispatch(campaign)

    def _start_running(self, campaign: Campaign) -> None:
        """Shared queued→running bookkeeping for both dispatch paths."""
        self._queue.remove(campaign)
        self._gauge_queue(campaign.spec.tenant)
        campaign.status = RUNNING
        campaign.detail = ""
        self._running[campaign.id] = campaign
        tenant = campaign.spec.tenant
        self._tenant_served[tenant] = self._tenant_served.get(tenant, 0) + 1
        if obs.enabled:
            obs.set_gauge("repro_serve_active_campaigns", len(self._running))

    def _dispatch_remote(self, campaign: Campaign, worker) -> bool:
        """Lease ``campaign`` to a cluster worker; False falls back local."""
        if not self.cluster.dispatch(campaign, worker):
            return False
        self._start_running(campaign)
        campaign.remote = True
        campaign.worker = worker.id
        lease = self.cluster.leases.get(campaign.id)
        campaign.lease_token = lease.token if lease is not None else 0
        if obs.enabled:
            obs.inc("repro_cluster_dispatches_total", mode="remote")
        return True

    def _dispatch(self, campaign: Campaign) -> None:
        self._start_running(campaign)
        campaign.live = LiveCoverage(source="local")
        if obs.enabled and self.cluster is not None:
            obs.inc("repro_cluster_dispatches_total", mode="local")
        future = self._loop.run_in_executor(
            self._pool, self._execute, campaign
        )
        future.add_done_callback(
            lambda fut, c=campaign: self._on_done(c, fut)
        )

    def _execute(self, campaign: Campaign) -> ExecutionOutcome:
        """Worker-thread body: run the campaign spec under the executor."""

        def live_progress(job_id: str, cycle: int, counts: dict) -> None:
            # Worker thread → loop-thread readers: LiveCoverage fields are
            # replaced wholesale (never mutated in place), so /report sees
            # either the previous checkpoint's view or this one.
            live = campaign.live
            if live is None:
                return
            live.counts = counts
            live.cycle = cycle
            live.updated_at = time.monotonic()

        try:
            return execute_spec(
                campaign.spec,
                campaign.id,
                self._checkpointer(campaign),
                cancel_event=campaign.cancel_event,
                isolation=self.config.isolation,
                timeout=self.config.default_timeout,
                retries=self.config.retries,
                progress=live_progress,
            )
        except Exception as error:
            logger.exception("campaign %s: runner failed", campaign.id)
            return ExecutionOutcome(status=FAILED, detail=str(error))

    def _finalize(self, campaign: Campaign, status: str, detail: str,
                  counts: Optional[dict], cycles_run: int,
                  attempts: int) -> None:
        """Shared terminal path: set state, journal ``finish``, account."""
        campaign.status = status
        campaign.detail = detail
        campaign.counts = counts
        campaign.cycles_run = cycles_run
        campaign.attempts = attempts
        campaign.live = None
        campaign.remote = False
        try:
            self.journal.append({
                "type": "finish",
                "id": campaign.id,
                "status": status,
                "detail": campaign.detail,
                "cycles_run": campaign.cycles_run,
                "attempts": campaign.attempts,
            })
        except Exception:
            logger.exception(
                "campaign %s: finish record failed; state is in-memory only",
                campaign.id,
            )
        if obs.enabled:
            obs.inc("repro_serve_campaigns_total",
                    tenant=campaign.spec.tenant, status=status)
        self._maybe_compact()
        if self._wake is not None:
            self._wake.set()

    def _on_done(self, campaign: Campaign, future) -> None:
        """Back on the loop thread: record the outcome durably."""
        self._running.pop(campaign.id, None)
        if obs.enabled:
            obs.set_gauge("repro_serve_active_campaigns", len(self._running))
        try:
            outcome = future.result()
        except Exception as error:  # pool shutdown / cancelled future
            outcome = ExecutionOutcome(status="interrupted", detail=str(error))
        self.breakers.record(campaign.spec.backend, ok=outcome.backend_ok)
        if outcome.status == "interrupted" and campaign.cancel_reason == "drain":
            # Drain interruption is not an outcome: the campaign goes back
            # to queued (journal already holds its submit record) and the
            # next process life resumes it.
            campaign.status = QUEUED
            campaign.detail = "interrupted by drain; will resume on restart"
            campaign.cancel_event.clear()
            campaign.cancel_reason = ""
            campaign.live = None
            self._queue.append(campaign)
            self._gauge_queue(campaign.spec.tenant)
            return
        status = (
            CANCELLED if outcome.status == "interrupted" else outcome.status
        )
        self._finalize(campaign, status, outcome.detail, outcome.counts,
                       outcome.cycles_run, outcome.attempts)

    # -- cluster callbacks (loop thread, called by the coordinator) -------------

    def _finish_remote(self, campaign_id: str, *, status: str, detail: str,
                       counts: Optional[dict], cycles_run: int, attempts: int,
                       backend_ok: bool, worker: str, token: int) -> None:
        """A fenced-valid ``done`` frame arrived for a remote campaign."""
        campaign = self.campaigns.get(campaign_id)
        if campaign is None or campaign.status != RUNNING or not campaign.remote:
            return  # finished/cancelled while the frame was in flight
        self._running.pop(campaign_id, None)
        if obs.enabled:
            obs.set_gauge("repro_serve_active_campaigns", len(self._running))
        self.breakers.record(campaign.spec.backend, ok=backend_ok)
        final = CANCELLED if status == "interrupted" else status
        if final == DONE and counts is not None:
            # Crash-recovery invariant (same as the local executor): the
            # complete shard is on disk *before* the finish record, so a
            # crash between the two re-adopts instead of re-running.
            try:
                self._checkpointer(campaign).write(Shard(
                    job_id=campaign_id,
                    backend=campaign.spec.backend,
                    cycle=cycles_run,
                    counts=dict(counts),
                    complete=True,
                    origin=f"{worker}#{token}",
                ))
            except Exception:
                logger.exception(
                    "campaign %s: persisting remote shard failed", campaign_id
                )
        self._finalize(campaign, final, detail, counts, cycles_run, attempts)

    def _remote_lost(self, campaign_id: str, reason: str) -> None:
        """A remote campaign's lease died (expiry/disconnect): requeue it.

        Deterministic seeding makes the re-run — on any worker or the
        local pool — bit-identical, so losing a worker costs time, never
        correctness.
        """
        campaign = self.campaigns.get(campaign_id)
        if campaign is None or campaign.status != RUNNING or not campaign.remote:
            return
        self._running.pop(campaign_id, None)
        if obs.enabled:
            obs.set_gauge("repro_serve_active_campaigns", len(self._running))
        campaign.status = QUEUED
        campaign.detail = f"requeued: {reason}"
        campaign.remote = False
        campaign.worker = ""
        campaign.lease_token = 0
        campaign.live = None
        campaign.cancel_event.clear()
        self._queue.append(campaign)
        self._gauge_queue(campaign.spec.tenant)
        if self._wake is not None:
            self._wake.set()

    # -- submit/cancel (loop thread) -------------------------------------------

    def submit(self, spec: CampaignSpec) -> tuple[Optional[Campaign], Optional[str]]:
        """Admit, journal, and enqueue one campaign.

        Returns ``(campaign, None)`` or ``(None, rejection_reason)``.
        The campaign exists only after its submit record is durable —
        write-ahead, then acknowledge.
        """
        reason = self.admission_reason(spec.tenant)
        if reason is not None:
            if obs.enabled:
                obs.inc("repro_serve_admission_rejections_total",
                        tenant=spec.tenant, reason=reason)
            return None, reason
        seq = self._next_seq
        campaign = Campaign(id=f"c{seq:06d}", seq=seq, spec=spec)
        self.journal.append({
            "type": "submit",
            "id": campaign.id,
            "seq": seq,
            "spec": spec.to_json_obj(),
        })
        self._next_seq = seq + 1
        self.campaigns[campaign.id] = campaign
        self._enqueue(campaign)
        self._maybe_compact()
        return campaign, None

    def cancel(self, campaign_id: str) -> tuple[int, dict]:
        campaign = self.campaigns.get(campaign_id)
        if campaign is None:
            return 404, {"error": f"no campaign {campaign_id}"}
        if campaign.terminal:
            return 409, {"error": f"campaign is already {campaign.status}"}
        if campaign.status == QUEUED:
            self._queue.remove(campaign)
            self._gauge_queue(campaign.spec.tenant)
            campaign.status = CANCELLED
            campaign.detail = "cancelled while queued"
            self.journal.append({
                "type": "finish", "id": campaign.id, "status": CANCELLED,
                "detail": campaign.detail, "cycles_run": 0, "attempts": 0,
            })
            if obs.enabled:
                obs.inc("repro_serve_campaigns_total",
                        tenant=campaign.spec.tenant, status=CANCELLED)
            return 200, campaign.to_public()
        if campaign.remote:
            # Remote: revoke the lease (the worker stops at its next cycle
            # boundary and goes quiet) and finalize immediately — any late
            # frame under the dead token is fenced off at the door.
            if self.cluster is not None:
                self.cluster.revoke(campaign.id, "cancelled by user")
            self._running.pop(campaign.id, None)
            if obs.enabled:
                obs.set_gauge("repro_serve_active_campaigns",
                              len(self._running))
            self._finalize(campaign, CANCELLED, "cancelled by user", None,
                           campaign.cycles_run, campaign.attempts)
            return 200, campaign.to_public()
        # Running locally: flag it; the drive loop raises at the next cycle.
        campaign.cancel_reason = "user"
        campaign.cancel_event.set()
        return 202, campaign.to_public()

    # -- HTTP ------------------------------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        endpoint = "?"
        try:
            try:
                request = await asyncio.wait_for(
                    self._read_request(reader), timeout=30.0
                )
            except _HttpError as error:
                endpoint = error.endpoint
                await self._respond(writer, error.code, {"error": error.message},
                                    endpoint=endpoint)
                return
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError):
                return
            method, path, body = request
            endpoint = path.strip("/").split("/", 1)[0] or "root"
            code, payload, content_type = self._route(method, path, body)
            await self._respond(writer, code, payload,
                                content_type=content_type, endpoint=endpoint)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader) -> tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        method, path, _version = parts
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length > self.config.max_body_bytes:
            raise _HttpError(
                413,
                f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit",
                endpoint=path.strip("/").split("/", 1)[0] or "root",
            )
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    def _route(self, method: str, path: str, body: bytes):
        """Dispatch one request; returns (code, payload, content-type)."""
        parts = [p for p in path.split("?")[0].split("/") if p]
        head = parts[0] if parts else ""
        if method == "POST" and head == "submit":
            try:
                obj = json.loads(body or b"{}")
            except json.JSONDecodeError as error:
                return 400, {"error": f"body is not JSON: {error}"}, None
            if (
                self.config.min_instrument
                and isinstance(obj, dict)
                and "min_instrument" not in obj
            ):
                # server-wide default: submitters may still opt out with
                # an explicit "min_instrument": false
                obj["min_instrument"] = True
            try:
                spec = CampaignSpec.from_json_obj(obj)
            except SpecError as error:
                return 400, {"error": str(error)}, None
            try:
                campaign, reason = self.submit(spec)
            except Exception as error:
                logger.exception("submit failed")
                return 500, {"error": f"submit failed: {error}"}, None
            if campaign is None:
                code = 503 if reason == "draining" else 429
                return code, {"error": f"admission refused: {reason}",
                              "reason": reason,
                              "retry_after": self.config.retry_after_s}, None
            return 202, {"id": campaign.id, "status": campaign.status}, None
        if method == "GET" and head == "status" and len(parts) == 2:
            campaign = self.campaigns.get(parts[1])
            if campaign is None:
                return 404, {"error": f"no campaign {parts[1]}"}, None
            return 200, campaign.to_public(), None
        if method == "GET" and head == "campaigns":
            return 200, {
                "campaigns": [
                    c.to_public()
                    for c in sorted(self.campaigns.values(), key=lambda c: c.seq)
                ]
            }, None
        if method == "POST" and head == "cancel" and len(parts) == 2:
            code, payload = self.cancel(parts[1])
            return code, payload, None
        if method == "GET" and head == "report" and len(parts) == 2:
            campaign = self.campaigns.get(parts[1])
            if campaign is None:
                return 404, {"error": f"no campaign {parts[1]}"}, None
            if campaign.counts is None:
                live = campaign.live
                if (campaign.status == RUNNING and live is not None
                        and live.updated_at > 0):
                    # Mid-run: serve the streamed partial view, clearly
                    # marked — advisory counts, exact ones come at finish.
                    return 200, {
                        "id": campaign.id,
                        "status": campaign.status,
                        "partial": True,
                        "cycles_run": live.cycle,
                        "counts": live.counts,
                        "progress": round(
                            live.cycle / max(1, campaign.spec.cycles), 4
                        ),
                        "staleness_s": round(
                            max(0.0, time.monotonic() - live.updated_at), 3
                        ),
                        "source": live.source,
                    }, None
                return 409, {"error": f"campaign is {campaign.status}; "
                                      "no counts yet"}, None
            return 200, {"id": campaign.id, "status": campaign.status,
                         "partial": False,
                         "cycles_run": campaign.cycles_run,
                         "counts": campaign.counts}, None
        if method == "GET" and head == "metrics":
            return 200, obs.metrics.to_prometheus(), "text/plain; version=0.0.4"
        if method == "GET" and head == "healthz":
            by_status: dict[str, int] = {}
            for c in self.campaigns.values():
                by_status[c.status] = by_status.get(c.status, 0) + 1
            out = {
                "status": "draining" if self._draining else "ok",
                "queued": len(self._queue),
                "running": len(self._running),
                "campaigns": by_status,
                "recovery": self.recovery,
                "breakers": self.breakers.snapshot(),
                "journal_bytes": self.journal.size_bytes,
                "journal_compactions": self.journal.compactions,
            }
            if self.cluster is not None:
                out["cluster"] = dict(
                    self.cluster.snapshot(), port=self.cluster_port
                )
            return 200, out, None
        return 404, {"error": f"no route for {method} {path}"}, None

    async def _respond(self, writer, code: int, payload,
                       content_type: Optional[str] = None,
                       endpoint: str = "?") -> None:
        if content_type is None:
            content_type = "application/json"
            body = json.dumps(payload, sort_keys=True).encode() + b"\n"
        else:
            body = payload.encode() if isinstance(payload, str) else payload
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 409: "Conflict",
                  413: "Payload Too Large", 429: "Too Many Requests",
                  500: "Internal Server Error",
                  503: "Service Unavailable"}.get(code, "OK")
        retry_after = ""
        if code in (429, 503):
            # Back-pressure responses tell the client when to come back;
            # the client jitters around it so the herd does not re-sync.
            hint = max(1, int(round(self.config.retry_after_s)))
            retry_after = f"Retry-After: {hint}\r\n"
        head = (
            f"HTTP/1.1 {code} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{retry_after}"
            "Connection: close\r\n\r\n"
        )
        if obs.enabled:
            obs.inc("repro_serve_requests_total",
                    endpoint=endpoint, code=str(code))
        try:
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except ConnectionError:
            pass


class _HttpError(Exception):
    def __init__(self, code: int, message: str, endpoint: str = "?") -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.endpoint = endpoint
