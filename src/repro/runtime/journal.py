"""Crash-safe append-only write-ahead journal for the coverage service.

The service (:mod:`~repro.runtime.service`) must survive ``kill -9`` at
any instant without losing an accepted campaign.  The journal is the
mechanism: every state transition is appended — and fsync'd — *before*
the service acknowledges it, so restart recovery is a pure replay.

File layout::

    magic (8 bytes, ``b"RPROWAL1"``)
    record*                       where record :=
        u32 LE  payload length
        u32 LE  CRC-32 of the payload
        bytes   payload (canonical JSON, UTF-8)

Design points, each load-bearing for crash safety:

* **Length-prefix + CRC** — a record is trusted only if its full frame is
  present *and* its checksum matches.  A crash mid-append leaves a torn
  tail that replay detects and discards; everything before it is intact.
* **fsync'd appends** — :meth:`Journal.append` returns only after the
  record is on stable storage (``fsync`` can be disabled for tests and
  throwaway runs; the loss window is then the OS page cache).
* **Self-healing failed appends** — if the write or fsync fails
  (``ENOSPC``, I/O error), the journal truncates itself back to the last
  good offset before re-raising, so a failed append can never poison the
  history that follows it.
* **Atomic snapshot compaction** — :meth:`Journal.compact` rewrites the
  journal as a single snapshot record via write-temp + ``fsync`` +
  ``os.replace`` + directory ``fsync``, so a crash during compaction
  leaves either the old journal or the new one, never a mix.
* **Torn-tail repair on open** — re-opening a journal whose tail is torn
  truncates the file back to the last good record, so new appends start
  from a consistent point.

The ``os_module`` hook exists for fault injection
(:class:`~repro.runtime.faults.FaultyOS`): tests drive torn writes,
``ENOSPC``, and fsync failures through it without touching the real
filesystem layer.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from .telemetry import obs

#: journal file magic: identifies the format and its version
MAGIC = b"RPROWAL1"

_FRAME = struct.Struct("<II")  # payload length, payload CRC-32

#: refuse absurd lengths during replay — a corrupt length prefix must not
#: make the reader try to allocate gigabytes
MAX_RECORD_BYTES = 64 << 20


class JournalError(ValueError):
    """The journal file is unusable or an append could not be made durable."""


@dataclass
class ReplayResult:
    """What a journal file yielded on replay.

    ``good_bytes`` is the offset one past the last intact record —
    the truncation point that repairs a torn tail.  ``torn`` describes
    the tail damage (None for a cleanly-ended file).  Records after the
    first damaged frame are untrusted by construction (the format has no
    resynchronization marker) and are never returned.
    """

    records: list[dict] = field(default_factory=list)
    good_bytes: int = len(MAGIC)
    torn: Optional[str] = None

    @property
    def clean(self) -> bool:
        return self.torn is None


def encode_record(record: dict) -> bytes:
    """One length-prefixed, CRC-framed journal record."""
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def replay(path) -> ReplayResult:
    """Read every intact record from a journal file.

    Raises :class:`JournalError` if the file exists but does not carry
    the journal magic — repairing (truncating) a file that was never a
    journal would destroy someone else's data.  A missing file replays
    as empty-and-clean.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return ReplayResult(records=[], good_bytes=0, torn=None)
    if len(data) < len(MAGIC):
        if data and not MAGIC.startswith(data):
            raise JournalError(f"{path}: not a journal (bad magic)")
        return ReplayResult(
            records=[], good_bytes=0,
            torn=f"truncated magic ({len(data)} of {len(MAGIC)} bytes)",
        )
    if data[: len(MAGIC)] != MAGIC:
        raise JournalError(f"{path}: not a journal (bad magic)")

    result = ReplayResult()
    offset = len(MAGIC)
    while offset < len(data):
        remaining = len(data) - offset
        if remaining < _FRAME.size:
            result.torn = (
                f"torn record header at offset {offset} "
                f"({remaining} of {_FRAME.size} bytes)"
            )
            break
        length, crc = _FRAME.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            result.torn = (
                f"implausible record length {length} at offset {offset}"
            )
            break
        body_start = offset + _FRAME.size
        if len(data) - body_start < length:
            result.torn = (
                f"torn record payload at offset {offset} "
                f"({len(data) - body_start} of {length} bytes)"
            )
            break
        payload = data[body_start:body_start + length]
        if zlib.crc32(payload) != crc:
            result.torn = f"CRC mismatch at offset {offset}"
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            # CRC passed but the payload is not JSON: treat as tail damage
            # (a writer bug, not silent corruption) rather than crashing.
            result.torn = f"undecodable record at offset {offset}: {error}"
            break
        result.records.append(record)
        offset = body_start + length
        result.good_bytes = offset
    return result


def fsync_directory(directory) -> None:
    """Flush a directory entry to disk (best effort off POSIX)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover — platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover — fs without dir fsync
        pass
    finally:
        os.close(fd)


class Journal:
    """An append-only, CRC-framed, fsync'd record log.

    ``fsync=False`` trades the power-loss guarantee for speed (the
    process-crash guarantee — ``kill -9`` — still holds: appends are
    single ``write`` calls into the OS page cache).  ``os_module`` is the
    fault-injection seam; production always passes the real :mod:`os`.
    """

    def __init__(
        self,
        path,
        fsync: bool = True,
        os_module=None,
        auto_compact_bytes: int = 0,
        snapshot_provider=None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._os = os_module if os_module is not None else os
        self._lock = threading.Lock()
        self.records_appended = 0
        self.compactions = 0
        #: auto-compact once the file grows past this size (0 disables);
        #: ``snapshot_provider()`` must return the snapshot record
        self.auto_compact_bytes = auto_compact_bytes
        self.snapshot_provider = snapshot_provider
        self._auto_compact_at = auto_compact_bytes
        self.recovered = replay(self.path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists()
        self._fd = self._os.open(
            str(self.path), os.O_RDWR | os.O_CREAT, 0o644
        )
        try:
            if fresh or self.recovered.good_bytes == 0:
                self._os.ftruncate(self._fd, 0)
                self._write_all(MAGIC)
                self._flush()
                self._size = len(MAGIC)
                if fresh:
                    fsync_directory(self.path.parent)
            else:
                # Repair a torn tail: everything past the last intact
                # record is a half-written frame from a crash mid-append.
                if not self.recovered.clean:
                    self._os.ftruncate(self._fd, self.recovered.good_bytes)
                    self._flush()
                self._size = self.recovered.good_bytes
                self._os.lseek(self._fd, self._size, os.SEEK_SET)
        except BaseException:
            self._os.close(self._fd)
            self._fd = None
            raise

    # -- append ----------------------------------------------------------------

    def append(self, record: dict) -> int:
        """Durably append ``record``; returns its byte offset in the file.

        On any write/fsync failure the journal truncates itself back to
        the pre-append offset and raises :class:`JournalError` — the
        failed append leaves no trace, and the journal stays appendable
        (e.g. once disk space returns).
        """
        if self._fd is None:
            raise JournalError(f"{self.path}: journal is closed")
        frame = encode_record(record)
        with self._lock:
            start = self._size
            try:
                self._write_all(frame)
                self._flush()
            except OSError as error:
                # Self-heal: drop whatever partial frame made it to disk.
                try:
                    self._os.ftruncate(self._fd, start)
                    self._os.lseek(self._fd, start, os.SEEK_SET)
                    self._flush()
                except OSError:  # pragma: no cover — heal failed too
                    pass
                raise JournalError(
                    f"{self.path}: append failed ({error}); "
                    "journal truncated back to last good record"
                ) from error
            self._size = start + len(frame)
            self.records_appended += 1
        if obs.enabled:
            obs.inc(
                "repro_serve_journal_appends_total",
                type=str(record.get("type", "?")),
            )
        self._maybe_autocompact()
        return start

    def _maybe_autocompact(self) -> None:
        """Fold the history into one snapshot once the file grows too big.

        Runs outside ``self._lock`` (``compact`` takes it).  The re-arm
        threshold is ``max(auto_compact_bytes, 2 * compacted size)`` so a
        snapshot already bigger than the configured limit cannot trigger
        a compaction on every subsequent append — the journal must earn
        each compaction by doubling first.
        """
        if (
            not self.auto_compact_bytes
            or self.snapshot_provider is None
            or self._size < self._auto_compact_at
        ):
            return
        try:
            self.compact(self.snapshot_provider())
        except JournalError:
            # Disk trouble: appends already self-heal; compaction retries
            # at the next threshold crossing.
            return

    # -- compaction ------------------------------------------------------------

    def compact(self, snapshot: dict) -> None:
        """Atomically replace the whole journal with one snapshot record.

        The snapshot must carry everything replay needs (the caller owns
        its schema).  Crash-safe: the new journal is written to a temp
        file, fsync'd, and ``os.replace``'d over the old one, then the
        directory entry is fsync'd — at every instant exactly one
        complete journal exists at ``self.path``.
        """
        if self._fd is None:
            raise JournalError(f"{self.path}: journal is closed")
        frame = MAGIC + encode_record(snapshot)
        tmp = self.path.with_name(self.path.name + ".compact.tmp")
        with self._lock:
            fd = self._os.open(
                str(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
            )
            try:
                view = memoryview(frame)
                while view:
                    view = view[self._os.write(fd, view):]
                if self.fsync:
                    self._os.fsync(fd)
            except OSError as error:
                self._os.close(fd)
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise JournalError(
                    f"{self.path}: compaction failed ({error}); "
                    "old journal left untouched"
                ) from error
            self._os.close(fd)
            self._os.replace(str(tmp), str(self.path))
            if self.fsync:
                fsync_directory(self.path.parent)
            # The old fd now points at an unlinked inode; reopen.
            self._os.close(self._fd)
            self._fd = self._os.open(str(self.path), os.O_RDWR, 0o644)
            self._size = len(frame)
            self._os.lseek(self._fd, self._size, os.SEEK_SET)
            self.compactions += 1
            # Re-arm auto-compaction: the journal must outgrow both the
            # configured limit and double its fresh snapshot before the
            # next one, so an oversized snapshot cannot thrash.
            self._auto_compact_at = max(
                self.auto_compact_bytes, self._size * 2
            )
        if obs.enabled:
            obs.inc("repro_serve_journal_compactions_total")

    # -- bookkeeping -----------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Current journal length in bytes (magic + intact records)."""
        return self._size

    def close(self) -> None:
        if self._fd is not None:
            self._os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _write_all(self, data: bytes) -> None:
        view = memoryview(data)
        while view:
            view = view[self._os.write(self._fd, view):]

    def _flush(self) -> None:
        if self.fsync:
            self._os.fsync(self._fd)
