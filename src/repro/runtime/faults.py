"""Deterministic fault injection for testing the run orchestrator.

Real coverage campaigns treat backends as unreliable workers: interpreters
hang, compiled models segfault, FPGA scan-chain reads flip bits.  None of
our pure-Python backends actually do any of that, so this module wraps any
:class:`~repro.backends.api.Simulation` in a seeded fault model that does —
on demand, reproducibly — which is what the executor's timeout, retry,
checkpoint, and quarantine paths are tested against.

All faults are deterministic functions of ``(FaultPlan, attempt number,
cycle)``; re-running a campaign with the same seed reproduces the same
crashes, hangs, and corruptions.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Optional

from ..backends.api import (
    CoverCounts,
    SimulationCrash,
    StepResult,
)


class PowerLoss(BaseException):
    """The machine "died" mid-write (injected).

    Deliberately *not* an :class:`OSError` — and not even an
    :class:`Exception` — so that no error-handling path in the code under
    test can run: a real power cut or ``kill -9`` executes nobody's
    ``except`` clause.  Whatever bytes made it to disk before the cut
    stay there, exactly as a torn write would leave them.
    """


@dataclass
class DiskFaultPlan:
    """What goes wrong on the filesystem, and when.

    All byte thresholds are cumulative across every ``write`` call routed
    through one :class:`FaultyOS` instance.

    * ``power_cut_after_bytes`` — once this many bytes have been written,
      the next write stores only the bytes up to the threshold and raises
      :class:`PowerLoss` (a torn write: the partial frame stays on disk
      and no cleanup code runs).
    * ``enospc_after_bytes`` — the disk "fills": writes past the
      threshold store what fits and raise ``OSError(ENOSPC)``.  Unlike a
      power cut this is an ordinary error the code under test must handle
      (the journal self-heals by truncating the partial frame).
    * ``fsync_failures`` — the first N ``fsync`` calls raise
      ``OSError(EIO)`` (models a dying disk or a lying NFS server).
    """

    power_cut_after_bytes: Optional[int] = None
    enospc_after_bytes: Optional[int] = None
    fsync_failures: int = 0


class FaultyOS:
    """Drop-in ``os``-module subset with injected disk faults.

    :class:`~repro.runtime.journal.Journal` and
    :class:`~repro.runtime.checkpoint.Checkpointer` route their raw file
    operations through an ``os_module`` hook; handing them a ``FaultyOS``
    makes torn writes, ``ENOSPC``, and fsync failures happen on demand,
    deterministically, without touching the real filesystem layer.
    Everything not overridden passes through to the real :mod:`os`.
    """

    def __init__(self, plan: DiskFaultPlan) -> None:
        self.plan = plan
        self.bytes_written = 0
        self.fsync_calls = 0
        self.writes_torn = 0

    def _budget(self) -> Optional[int]:
        """Bytes still writable before the nearest configured fault."""
        limits = [
            limit for limit in (
                self.plan.power_cut_after_bytes,
                self.plan.enospc_after_bytes,
            ) if limit is not None
        ]
        if not limits:
            return None
        return max(0, min(limits) - self.bytes_written)

    def write(self, fd: int, data) -> int:
        budget = self._budget()
        data = bytes(data)
        if budget is None or len(data) <= budget:
            written = os.write(fd, data)
            self.bytes_written += written
            return written
        # The fault hits inside this write: store the surviving prefix
        # (a torn write is a *partial* write), then fail.
        if budget:
            self.bytes_written += os.write(fd, data[:budget])
        self.writes_torn += 1
        cut = self.plan.power_cut_after_bytes
        if cut is not None and self.bytes_written >= cut:
            raise PowerLoss(
                f"injected power cut after {self.bytes_written} bytes"
            )
        raise OSError(errno.ENOSPC, "injected: no space left on device")

    def fsync(self, fd: int) -> None:
        self.fsync_calls += 1
        if self.fsync_calls <= self.plan.fsync_failures:
            raise OSError(errno.EIO, "injected fsync failure")
        os.fsync(fd)

    def __getattr__(self, name: str):
        return getattr(os, name)


@dataclass
class FaultPlan:
    """What goes wrong, and when.

    * ``crash_at`` — raise :class:`SimulationCrash` once the simulation
      reaches this cycle.
    * ``fail_attempts`` — only the first N attempts fault (crash *or*
      hang); later attempts run clean (models a transient fault the retry
      path should absorb).  0 means every attempt faults (a hard fault).
    * ``hang_at`` — ``step()`` blocks indefinitely at this cycle (models a
      wedged simulator; the executor's watchdog must fire).  Cooperative:
      the hang polls a ``release`` event so thread-mode tests can clean up.
    * ``hang_hard_at`` — ``step()`` blocks *forever*, ignoring both the
      executor's cancellation flag and ``release`` (models a simulator
      wedged in native code).  Only process isolation can end this one:
      under the thread-mode executor the worker leaks as a spinning daemon
      thread for the life of the interpreter.
    * ``balloon_at`` — ``step()`` allocates memory without bound (models a
      leak/runaway allocation).  Under a process worker with an
      ``address_space_mb`` cap the balloon pops as a contained
      :class:`SimulationCrash`; the ``balloon_cap_mb`` safety cap keeps an
      *uncapped* test process from eating the host.
    * ``corrupt_keys`` / ``drop_keys`` / ``negate_keys`` / ``inflate_keys``
      — corrupt ``cover_counts()`` output: rename keys out of the cover
      namespace, silently drop keys, make counts negative, or inflate
      counts past the saturation limit of ``inflate_width``.
    * ``lie_keys`` / ``lie_delta`` — *plausible-but-wrong* counts: add
      ``lie_delta`` to N seeded-chosen covers.  The result stays in the
      namespace, non-negative, and in range — shard validation cannot see
      it; only cross-backend differential quorum can.
    * ``seed`` — drives every random choice.
    """

    crash_at: Optional[int] = None
    fail_attempts: int = 0
    hang_at: Optional[int] = None
    hang_hard_at: Optional[int] = None
    balloon_at: Optional[int] = None
    balloon_cap_mb: int = 512
    balloon_chunk_mb: int = 16
    corrupt_keys: int = 0
    drop_keys: int = 0
    negate_keys: int = 0
    inflate_keys: int = 0
    inflate_width: int = 16
    lie_keys: int = 0
    lie_delta: int = 5
    seed: int = 0


class FaultySimulation:
    """Simulation-protocol wrapper that injects the planned faults."""

    def __init__(self, sim, plan: FaultPlan, attempt: int = 1) -> None:
        self._sim = sim
        self.plan = plan
        self.attempt = attempt
        self.cycle = 0
        self._balloon: list[bytearray] = []
        #: set to release an injected hang (so test processes can clean up)
        self.release = threading.Event()

    # -- pass-through ----------------------------------------------------------

    def poke(self, port: str, value: int) -> None:
        self._sim.poke(port, value)

    def peek(self, port: str) -> int:
        return self._sim.peek(port)

    # -- injected step faults --------------------------------------------------

    def _faulting_attempt(self) -> bool:
        return self.plan.fail_attempts == 0 or self.attempt <= self.plan.fail_attempts

    def step(self, cycles: int = 1) -> StepResult:
        done = 0
        faulting = self._faulting_attempt()
        for _ in range(cycles):
            if (
                faulting
                and self.plan.crash_at is not None
                and self.cycle >= self.plan.crash_at
            ):
                raise SimulationCrash(
                    f"injected crash at cycle {self.cycle} "
                    f"(attempt {self.attempt}, seed {self.plan.seed})"
                )
            if (
                faulting
                and self.plan.hang_hard_at is not None
                and self.cycle >= self.plan.hang_hard_at
            ):
                # An uncancellable hang: no release, no abandoned-flag
                # polling.  Only SIGKILL from a process supervisor ends it.
                while True:
                    time.sleep(0.05)
            if (
                faulting
                and self.plan.balloon_at is not None
                and self.cycle >= self.plan.balloon_at
            ):
                self._inflate_balloon()
            if (
                faulting
                and self.plan.hang_at is not None
                and self.cycle >= self.plan.hang_at
            ):
                # Block until released; the executor's watchdog abandons the
                # worker thread, and `release` lets tests unwedge it.
                while not self.release.wait(0.05):
                    pass
                return StepResult(done)
            result = self._sim.step(1)
            self.cycle += 1
            done += result.cycles
            if result.stopped:
                return StepResult(done, True, result.stop_name, result.exit_code)
        return StepResult(done)

    def _inflate_balloon(self) -> None:
        """Allocate fixed-size chunks until a memory cap stops us.

        With an in-worker ``RLIMIT_AS`` cap the allocation raises
        ``MemoryError``; the balloon is dropped *before* re-raising so the
        child process has headroom to report the failure over its pipe.
        Without a cap, the safety limit trips instead of eating the host.
        The chunk size is part of the plan (``balloon_chunk_mb``) so tests
        can bound how many allocations stand between them and the pop.
        """
        chunk_mb = self.plan.balloon_chunk_mb
        try:
            while len(self._balloon) * chunk_mb < self.plan.balloon_cap_mb:
                self._balloon.append(bytearray(chunk_mb << 20))
        except MemoryError:
            self._balloon.clear()
            raise SimulationCrash(
                f"injected memory balloon popped on the worker's memory cap "
                f"at cycle {self.cycle} (attempt {self.attempt})"
            ) from None
        self._balloon.clear()
        raise SimulationCrash(
            f"injected memory balloon hit its {self.plan.balloon_cap_mb} MiB "
            "safety cap without tripping a memory limit — no RLIMIT_AS set?"
        )

    # -- injected count corruption ---------------------------------------------

    def cover_counts(self) -> CoverCounts:
        counts = dict(self._sim.cover_counts())
        plan = self.plan
        if plan.lie_keys and self._faulting_attempt():
            rng = random.Random(f"{plan.seed}:lies")
            for key in rng.sample(sorted(counts), min(len(counts), plan.lie_keys)):
                # plausible: stays an in-namespace, non-negative int
                counts[key] = counts[key] + plan.lie_delta
        if not (plan.corrupt_keys or plan.drop_keys or plan.negate_keys
                or plan.inflate_keys):
            return counts
        rng = random.Random(f"{plan.seed}:{self.attempt}:counts")
        keys = sorted(counts)
        victims = rng.sample(
            keys,
            min(len(keys), plan.corrupt_keys + plan.drop_keys
                + plan.negate_keys + plan.inflate_keys),
        )
        cursor = 0
        for _ in range(min(plan.corrupt_keys, len(victims) - cursor)):
            key = victims[cursor]
            cursor += 1
            counts[f"{key}__corrupt{rng.randrange(1 << 16):04x}"] = counts.pop(key)
        for _ in range(min(plan.drop_keys, len(victims) - cursor)):
            counts.pop(victims[cursor])
            cursor += 1
        for _ in range(min(plan.negate_keys, len(victims) - cursor)):
            key = victims[cursor]
            cursor += 1
            counts[key] = -(counts[key] + 1)
        limit = (1 << plan.inflate_width) - 1
        for _ in range(min(plan.inflate_keys, len(victims) - cursor)):
            key = victims[cursor]
            cursor += 1
            counts[key] = limit + 1 + rng.randrange(1 << 8)
        return counts


class FaultyBackend:
    """Backend wrapper: every ``compile*`` call is one numbered attempt.

    The attempt number feeds :class:`FaultPlan.fail_attempts`, which is how
    a "fails twice, succeeds on the third try" transient fault is modelled:
    the executor recompiles a fresh simulation per retry, and the wrapper
    counts those compilations.

    Under process isolation each attempt's compile happens in a *forked
    child* whose copy of this counter never makes it back to the parent —
    every fork would look like attempt 1 and transient plans would never
    heal.  The worker publishes the executor-level attempt number
    (:func:`~repro.runtime.procworker.current_attempt`), which takes
    precedence when set.
    """

    def __init__(self, backend, plan: FaultPlan) -> None:
        self._backend = backend
        self.plan = plan
        self.attempts = 0
        self.name = f"faulty-{getattr(backend, 'name', 'backend')}"

    def _next_attempt(self) -> int:
        from .procworker import current_attempt

        self.attempts += 1
        return current_attempt() or self.attempts

    def compile(self, circuit, counter_width=None) -> FaultySimulation:
        return FaultySimulation(
            self._backend.compile(circuit, counter_width),
            self.plan,
            self._next_attempt(),
        )

    def compile_state(self, state, counter_width=None) -> FaultySimulation:
        return FaultySimulation(
            self._backend.compile_state(state, counter_width),
            self.plan,
            self._next_attempt(),
        )


@dataclass
class NetFaultPlan:
    """What goes wrong on the wire, and when.

    Applied to *outbound* frames of a cluster channel by
    :class:`FaultyChannel` — the realistic seam, because a worker's view
    of a partition is "my sends vanish"; the coordinator simply stops
    hearing from it.  All choices are deterministic functions of
    ``(seed, message index)``, so a chaos test replays identically.

    * ``drop_p`` — each frame is silently discarded with this
      probability (lossy link).
    * ``dup_p`` — each frame is sent twice (retransmit storm; the
      delta-merge contiguity check must make duplicates harmless).
    * ``delay_p`` / ``delay_s`` — each frame is held for ``delay_s``
      seconds before delivery (congestion; staleness the fencing tokens
      must catch).
    * ``reorder_p`` — each frame may be held back and sent *after* the
      following frame (out-of-order delivery).
    * ``partitions`` — ``(start_s, end_s)`` windows, measured from
      channel creation, during which every matching frame is *buffered*
      instead of sent; when a window ends the backlog floods out at
      once.  This is the zombie-holder scenario: the worker keeps
      computing and "sending" during the partition, the lease expires,
      and the flood of stale frames arrives after re-dispatch — every
      one must bounce off the fencing check.
    * ``only_types`` — restrict the faults to these frame types (empty
      = all).  Lets a test partition ``delta``/``heartbeat`` traffic
      while leaving ``hello`` registration intact.
    * ``seed`` — drives every random choice.
    """

    drop_p: float = 0.0
    dup_p: float = 0.0
    delay_p: float = 0.0
    delay_s: float = 0.05
    reorder_p: float = 0.0
    partitions: tuple = ()
    only_types: tuple = ()
    seed: int = 0


class FaultyChannel:
    """Channel wrapper that injects :class:`NetFaultPlan` faults on send.

    Wraps any object with ``send(msg)`` / ``recv()`` / ``close()``
    (duck-typed to :class:`~repro.runtime.protocol.LineChannel`).
    Inbound traffic passes through untouched — the coordinator's
    ``revoke``/``fenced`` frames still arrive, as they would on an
    asymmetric partition.

    Frames deferred by a delay or partition window are released by a
    daemon flusher thread, *not* lazily on the next send: a worker that
    goes quiet after a partition (revoked, cancelled) must still flood
    its buffered stale writes when the window lifts, or the zombie
    scenario never exercises the fencing check.
    """

    _TICK = 0.02

    def __init__(self, channel, plan: NetFaultPlan) -> None:
        self._channel = channel
        self.plan = plan
        self._rng = random.Random(f"{plan.seed}:net")
        self._born = time.monotonic()
        self._lock = threading.Lock()
        self._held: Optional[dict] = None   # reorder buffer (one frame)
        self._deferred: list = []           # (due_at, seq, msg)
        self._seq = 0
        self._closed = False
        self.sent = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.reordered = 0
        self.deferred_total = 0
        self._flusher = threading.Thread(
            target=self._flush_loop, name="net-fault-flusher", daemon=True
        )
        self._flusher.start()

    # -- fault application -----------------------------------------------------

    def _in_partition(self, now: float) -> Optional[float]:
        """The end of the active partition window, if any."""
        age = now - self._born
        for start, end in self.plan.partitions:
            if start <= age < end:
                return self._born + end
        return None

    def send(self, msg: dict) -> None:
        plan = self.plan
        if plan.only_types and msg.get("type") not in plan.only_types:
            self._channel.send(msg)
            return
        # Draw every decision up front so the outcome depends only on the
        # message index, not on which earlier branches were taken.
        roll_drop = self._rng.random()
        roll_dup = self._rng.random()
        roll_delay = self._rng.random()
        roll_reorder = self._rng.random()
        now = time.monotonic()
        window_end = self._in_partition(now)
        if window_end is not None:
            with self._lock:
                self._seq += 1
                self._deferred.append((window_end, self._seq, msg))
                self.deferred_total += 1
            return
        if roll_drop < plan.drop_p:
            self.dropped += 1
            return
        if roll_delay < plan.delay_p:
            with self._lock:
                self._seq += 1
                self._deferred.append((now + plan.delay_s, self._seq, msg))
                self.delayed += 1
                self.deferred_total += 1
            return
        if roll_reorder < plan.reorder_p:
            with self._lock:
                if self._held is None:
                    self._held = msg   # hold back; the next frame overtakes
                    return
        self._transmit(msg)
        if roll_dup < plan.dup_p:
            self.duplicated += 1
            self._transmit(msg)
        held = None
        with self._lock:
            if self._held is not None and self._held is not msg:
                held, self._held = self._held, None
                self.reordered += 1
        if held is not None:
            self._transmit(held)

    def _transmit(self, msg: dict) -> None:
        if self._closed:
            return
        try:
            self._channel.send(msg)
            self.sent += 1
        except (OSError, ValueError):
            pass  # the link died under us; the read loop notices EOF

    def _flush_loop(self) -> None:
        while not self._closed:
            now = time.monotonic()
            due = []
            with self._lock:
                keep = []
                for item in self._deferred:
                    (due if item[0] <= now else keep).append(item)
                self._deferred = keep
            for _, _, msg in sorted(due, key=lambda item: (item[0], item[1])):
                self._transmit(msg)
            time.sleep(self._TICK)

    # -- pass-through ----------------------------------------------------------

    def recv(self):
        return self._channel.recv()

    def close(self) -> None:
        self._closed = True
        self._channel.close()

    @property
    def closed(self) -> bool:
        return getattr(self._channel, "closed", self._closed)


class ScanNoiseHost:
    """Wraps a FireSim *host* simulation with a noisy scan-chain read path.

    Models the §5.2 failure mode this PR defends against: bits read off the
    FPGA scan chain arrive flipped.  Only reads of ``scan_out`` are
    affected; everything else passes through.  Because the driver
    recirculates what it read, an undetected flip also corrupts the stored
    counter — exactly why the driver samples every bit twice before
    committing it back (see :class:`~repro.backends.firesim.driver.\
FireSimSimulation`).

    Two noise models, combinable:

    * ``flip_probability`` — each ``scan_out`` read independently flips
      with this probability (transient noise),
    * ``flip_reads`` — the reads at these 0-based ``scan_out`` read
      indices flip, deterministically.  With verification on, the driver
      samples each chain bit twice, so read ``2*k`` is bit ``k``'s first
      sample and ``2*k + 1`` its resample; flipping both defeats the
      sample-before-commit check and models the documented p² residual.
    """

    def __init__(
        self,
        sim,
        flip_probability: float,
        seed: int = 0,
        flip_reads=None,
    ) -> None:
        if not 0.0 <= flip_probability <= 1.0:
            raise ValueError("flip probability must be in [0, 1]")
        self._sim = sim
        self.flip_probability = flip_probability
        self.flip_reads = frozenset(flip_reads or ())
        self._rng = random.Random(f"{seed}:scan-noise")
        self.reads = 0
        self.flips = 0

    def __getattr__(self, name):
        return getattr(self._sim, name)

    def peek(self, port: str) -> int:
        value = self._sim.peek(port)
        if port != "scan_out":
            return value
        index = self.reads
        self.reads += 1
        if index in self.flip_reads or self._rng.random() < self.flip_probability:
            self.flips += 1
            return value ^ 1
        return value
