"""Fault-tolerant coverage-run orchestration.

The paper's merge property (§3, §5.3) assumes every backend returns
pristine counts; this subsystem drops that assumption.  Jobs run behind a
wall-clock watchdog with bounded, jittered retries; live counts checkpoint
to shard files so crashes only cost the cycles since the last snapshot;
and every shard is validated against the cover namespace — corrupt shards
are quarantined into a report instead of poisoning the merge.

Pieces:

* :mod:`~repro.runtime.executor` — watchdog, retries/backoff, campaigns
* :mod:`~repro.runtime.checkpoint` — atomic JSON shard files, resume
* :mod:`~repro.runtime.validate` — namespace/width validation, quarantine
* :mod:`~repro.runtime.faults` — deterministic fault injection (tests the
  three modules above, and nothing in production imports it)
"""

from .checkpoint import SHARD_VERSION, Checkpointer, Shard, ShardError
from .executor import (
    CampaignResult,
    Executor,
    RunJob,
    RunOutcome,
    run_campaign,
)
from .faults import FaultPlan, FaultyBackend, FaultySimulation, ScanNoiseHost
from .validate import (
    QuarantineReport,
    QuarantinedShard,
    ShardIssue,
    merge_shards,
    validate_shard_counts,
)

__all__ = [
    "CampaignResult",
    "Checkpointer",
    "Executor",
    "FaultPlan",
    "FaultyBackend",
    "FaultySimulation",
    "QuarantineReport",
    "QuarantinedShard",
    "RunJob",
    "RunOutcome",
    "SHARD_VERSION",
    "ScanNoiseHost",
    "Shard",
    "ShardError",
    "ShardIssue",
    "merge_shards",
    "run_campaign",
    "validate_shard_counts",
]
