"""Fault-tolerant coverage-run orchestration.

The paper's merge property (§3, §5.3) assumes every backend returns
pristine counts; this subsystem drops that assumption.  Jobs run behind a
wall-clock watchdog with bounded, jittered retries — or, with
``isolation='process'``, inside supervised forked workers that heartbeat
over a pipe and are SIGKILLed (and resource-capped) when they wedge.
Live counts checkpoint to shard files so crashes only cost the cycles
since the last snapshot; every shard is validated against the cover
namespace — corrupt shards are quarantined into a report instead of
poisoning the merge; per-backend circuit breakers stop feeding jobs to a
systematically broken backend; and cross-backend differential runs turn
the shared namespace into a quorum defense against plausible-but-wrong
counts.

Pieces:

* :mod:`~repro.runtime.executor` — watchdog, retries/backoff, campaigns
* :mod:`~repro.runtime.procworker` — forked workers, heartbeats, SIGKILL
  supervision, rlimit caps
* :mod:`~repro.runtime.breaker` — per-backend circuit breakers
* :mod:`~repro.runtime.differential` — same job on ≥2 backends, majority
  vote per cover, structured disagreement reports
* :mod:`~repro.runtime.checkpoint` — atomic JSON shard files, resume
* :mod:`~repro.runtime.validate` — namespace/width validation, quarantine
* :mod:`~repro.runtime.journal` — crash-safe append-only write-ahead
  journal (length-prefixed, CRC-checked, fsync'd; atomic compaction)
* :mod:`~repro.runtime.service` — the ``repro serve`` daemon: JSON/HTTP
  campaign API, bounded admission with per-tenant quotas, fair
  scheduling, journal-backed crash recovery, graceful drain
* :mod:`~repro.runtime.protocol` — the newline-delimited JSON frames the
  cluster speaks, plus the blocking :class:`LineChannel` transport
* :mod:`~repro.runtime.cluster` — scale-out: the coordinator embedded in
  the service (leases, fencing tokens, live delta merges) and the
  ``repro worker`` remote execution node
* :mod:`~repro.runtime.client` — retrying HTTP client that honors the
  service's Retry-After back-pressure with jittered backoff
* :mod:`~repro.runtime.faults` — deterministic fault injection (tests the
  modules above, and nothing in production imports it)
* :mod:`~repro.runtime.telemetry` — span tracing + metrics behind the
  ``obs`` facade (disabled by default, no-op-cheap)
"""

# telemetry first: it has no intra-package imports, and every sibling
# (and the backends/coverage layers) may import it during module init.
from .telemetry import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StepMeter,
    Telemetry,
    Tracer,
    metrics_catalog_markdown,
    obs,
)
from .breaker import BreakerBoard, CircuitBreaker
from .checkpoint import SHARD_VERSION, Checkpointer, Shard, ShardError
from .client import ServiceClient, ServiceError, jittered_backoff
from .cluster import (
    ClusterCoordinator,
    ClusterWorker,
    Lease,
    LeaseError,
    LeaseTable,
    LiveCoverage,
    RemoteWorker,
    WorkerConfig,
)
from .differential import (
    CoverDisagreement,
    DifferentialResult,
    DifferentialRunner,
    DisagreementReport,
    quorum_merge,
)
from .executor import (
    CampaignResult,
    Executor,
    RunJob,
    RunOutcome,
    run_campaign,
)
from .faults import (
    DiskFaultPlan,
    FaultPlan,
    FaultyBackend,
    FaultyChannel,
    FaultyOS,
    FaultySimulation,
    NetFaultPlan,
    PowerLoss,
    ScanNoiseHost,
)
from .journal import Journal, JournalError, ReplayResult, replay
from .procworker import (
    ProcessAttemptResult,
    ResourceLimits,
    SupervisionPolicy,
    current_attempt,
    process_isolation_available,
    rlimit_as_enforceable,
    run_process_attempt,
)
from .protocol import (
    PROTOCOL_VERSION,
    LineChannel,
    ProtocolError,
    decode_message,
    encode_message,
)
from .service import (
    Campaign,
    CampaignSpec,
    CoverageService,
    ServiceConfig,
    SpecError,
    execute_spec,
)
from .validate import (
    QuarantineReport,
    QuarantinedShard,
    ShardIssue,
    merge_shards,
    validate_shard_counts,
)

__all__ = [
    "BreakerBoard",
    "Campaign",
    "CampaignResult",
    "CampaignSpec",
    "Checkpointer",
    "CircuitBreaker",
    "ClusterCoordinator",
    "ClusterWorker",
    "Counter",
    "CoverDisagreement",
    "CoverageService",
    "DifferentialResult",
    "DifferentialRunner",
    "DiskFaultPlan",
    "DisagreementReport",
    "Executor",
    "FaultPlan",
    "FaultyBackend",
    "FaultyChannel",
    "FaultyOS",
    "FaultySimulation",
    "Gauge",
    "Histogram",
    "Journal",
    "JournalError",
    "Lease",
    "LeaseError",
    "LeaseTable",
    "LineChannel",
    "LiveCoverage",
    "METRICS",
    "MetricsRegistry",
    "NetFaultPlan",
    "PROTOCOL_VERSION",
    "PowerLoss",
    "ProcessAttemptResult",
    "ProtocolError",
    "QuarantineReport",
    "QuarantinedShard",
    "RemoteWorker",
    "ReplayResult",
    "ResourceLimits",
    "RunJob",
    "RunOutcome",
    "SHARD_VERSION",
    "ScanNoiseHost",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "Shard",
    "ShardError",
    "ShardIssue",
    "SpecError",
    "StepMeter",
    "SupervisionPolicy",
    "Telemetry",
    "Tracer",
    "WorkerConfig",
    "current_attempt",
    "decode_message",
    "encode_message",
    "execute_spec",
    "jittered_backoff",
    "merge_shards",
    "metrics_catalog_markdown",
    "obs",
    "process_isolation_available",
    "quorum_merge",
    "replay",
    "rlimit_as_enforceable",
    "run_campaign",
    "run_process_attempt",
    "validate_shard_counts",
]
