"""Periodic cover-count checkpoints (shards) for fault-tolerant campaigns.

A *shard* is one job's contribution to a merged coverage report: the cover
counts it has accumulated so far, plus enough metadata to validate and
re-merge it later.  The executor writes a shard every K cycles, so a job
that crashes or hangs mid-run still contributes its last-good counts, and
an interrupted campaign can resume from the shard directory instead of
restarting from cycle 0.

Shard files are written atomically (write to a temp file in the same
directory, then ``os.replace``) so a crash *during* a checkpoint can never
leave a half-written shard behind — the worst case is a stale-but-valid
previous checkpoint.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..backends.api import CoverCounts
from .telemetry import obs

#: shard file format version
SHARD_VERSION = 1

SHARD_SUFFIX = ".shard.json"


class ShardError(ValueError):
    """A shard file on disk is unreadable or malformed."""


@dataclass
class Shard:
    """One job's (possibly partial) cover counts plus provenance.

    ``origin`` records *where* the counts were produced — empty for the
    local pool, ``"<worker id>#<fencing token>"`` for a shard a cluster
    worker computed under a lease.  Purely diagnostic provenance: merges
    and validation ignore it, and shards written before the field existed
    read back with the empty default.
    """

    job_id: str
    backend: str
    cycle: int
    counts: CoverCounts
    complete: bool = False
    path: Optional[str] = None
    origin: str = ""

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": SHARD_VERSION,
                "job_id": self.job_id,
                "backend": self.backend,
                "cycle": self.cycle,
                "complete": self.complete,
                "counts": self.counts,
                "origin": self.origin,
            },
            indent=2,
            sort_keys=True,
        )

    @staticmethod
    def from_json(text: str, path: Optional[str] = None) -> "Shard":
        where = f" in {path}" if path else ""

        def fail(detail: str) -> ShardError:
            return ShardError(f"bad shard{where}: {detail}")

        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise fail(f"not valid JSON ({error})") from error
        if not isinstance(data, dict):
            raise fail(f"expected a JSON object, got {type(data).__name__}")
        version = data.get("version")
        if version != SHARD_VERSION:
            raise fail(f"unsupported version {version!r} (expected {SHARD_VERSION})")
        for key, kind in (("job_id", str), ("backend", str), ("cycle", int),
                          ("complete", bool), ("counts", dict)):
            if not isinstance(data.get(key), kind):
                raise fail(f"missing or mistyped field {key!r}")
        origin = data.get("origin", "")
        if not isinstance(origin, str):
            raise fail("mistyped field 'origin'")
        return Shard(
            job_id=data["job_id"],
            backend=data["backend"],
            cycle=data["cycle"],
            counts=dict(data["counts"]),
            complete=data["complete"],
            path=path,
            origin=origin,
        )


@dataclass
class Checkpointer:
    """Writes and reads a directory of per-job shard files.

    ``every`` is the checkpoint period in cycles (0 disables periodic
    checkpoints; final shards are still written on job completion).
    ``fsync`` makes each shard durable before the atomic rename — the
    coverage service turns it on so a power cut cannot surface a rename
    pointing at unwritten data; the CLI default stays off (``os.replace``
    atomicity alone already covers process crashes).  ``campaign`` labels
    this checkpointer's metrics with the owning service campaign (empty
    outside the service).  ``os_module`` is the fault-injection seam
    (:class:`~repro.runtime.faults.FaultyOS`).
    """

    directory: Path
    every: int = 0
    fsync: bool = False
    campaign: str = ""
    os_module: object = None
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        if self.every < 0:
            raise ValueError(f"checkpoint period must be >= 0, got {self.every}")
        self._os = self.os_module if self.os_module is not None else os
        self.directory.mkdir(parents=True, exist_ok=True)

    def shard_path(self, job_id: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in job_id)
        return self.directory / f"{safe}{SHARD_SUFFIX}"

    def due(self, cycle: int) -> bool:
        """Whether a checkpoint should be written after ``cycle`` cycles."""
        return self.every > 0 and cycle % self.every == 0

    def next_due(self, cycle: int) -> int:
        """The first checkpoint boundary strictly after ``cycle``.

        Lets batched drivers size a ``step(n)`` block so it lands exactly
        on the boundary instead of stepping past it.  Undefined (raises)
        when periodic checkpoints are off — callers must check ``every``.
        """
        if self.every <= 0:
            raise ValueError("next_due requires a periodic checkpointer")
        return (cycle // self.every + 1) * self.every

    def write(self, shard: Shard) -> Optional[Path]:
        """Atomically persist ``shard``; returns the shard file path.

        An incomplete (periodic) shard never overwrites a complete one for
        the same job: once a job has a final shard on disk, a straggler
        attempt — e.g. a timed-out thread the watchdog abandoned that later
        unwedges — cannot downgrade it to a stale partial snapshot.  A
        refused write returns ``None``.
        """
        path = self.shard_path(shard.job_id)
        with obs.span(
            "checkpoint", cat="run", job=shard.job_id, cycle=shard.cycle
        ):
            with self._lock:
                if not shard.complete and self._has_complete_shard(path):
                    if obs.enabled:
                        obs.inc("repro_checkpoint_writes_total",
                                result="refused", campaign=self.campaign)
                    return None
                fd, tmp = tempfile.mkstemp(
                    dir=self.directory, prefix=path.name, suffix=".tmp"
                )
                closed = False
                try:
                    data = (shard.to_json() + "\n").encode("utf-8")
                    view = memoryview(data)
                    while view:
                        view = view[self._os.write(fd, view):]
                    if self.fsync:
                        self._os.fsync(fd)
                    self._os.close(fd)
                    closed = True
                    self._os.replace(tmp, path)
                except BaseException:
                    # A failed or torn temp write never touches the real
                    # shard: the rename is skipped and the temp is litter
                    # at worst (unlinked here when the process survives).
                    if not closed:
                        try:
                            self._os.close(fd)
                        except OSError:
                            pass
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
        if obs.enabled:
            obs.inc("repro_checkpoint_writes_total",
                    result="written", campaign=self.campaign)
        shard.path = str(path)
        return path

    @staticmethod
    def _has_complete_shard(path: Path) -> bool:
        """Whether a valid, complete shard already sits at ``path``."""
        try:
            return Shard.from_json(path.read_text(), path=str(path)).complete
        except FileNotFoundError:
            return False
        except (ShardError, OSError):
            return False  # unreadable/corrupt: overwriting it is fine

    def load(self, job_id: str) -> Optional[Shard]:
        """The job's last checkpoint, or None if it never wrote one."""
        path = self.shard_path(job_id)
        if not path.exists():
            return None
        return Shard.from_json(path.read_text(), path=str(path))

    def load_all(self) -> tuple[list[Shard], list[tuple[str, str]]]:
        """Read every shard in the directory.

        Returns ``(shards, unreadable)`` where ``unreadable`` pairs a file
        path with the parse/read error — the campaign quarantines those
        rather than aborting, whether the file is malformed (ShardError)
        or simply unreadable (permissions, transient FS issues).
        """
        shards: list[Shard] = []
        unreadable: list[tuple[str, str]] = []
        for path in sorted(self.directory.glob(f"*{SHARD_SUFFIX}")):
            try:
                shards.append(Shard.from_json(path.read_text(), path=str(path)))
            except (ShardError, OSError) as error:
                unreadable.append((str(path), str(error)))
        return shards, unreadable
