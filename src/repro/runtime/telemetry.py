"""Campaign observability: span tracing, metrics, and the ``obs`` facade.

The robustness layer (PRs 1–2) runs blind: nothing records where a
campaign spends its wall clock, why a breaker tripped, or how many
cycles/second each backend sustains.  This module is the measurement
substrate every future performance PR builds on.  It is deliberately
**zero-dependency** (standard library only) and **no-op-cheap when
disabled**: with telemetry off, instrumented code pays one attribute
check per span or metric call.

Two instruments, one facade:

* :class:`Tracer` — nested wall-clock *spans* (``elaborate`` /
  ``instrument`` / ``compile`` / ``attempt`` / ``step-batch`` /
  ``checkpoint`` / ``validate`` / ``merge`` …), exported as Chrome
  trace-event JSON that loads directly into ``chrome://tracing`` or
  `Perfetto <https://ui.perfetto.dev>`_.  Spans from forked worker
  processes are serialized over the supervision pipe and re-parented
  into the parent trace (see :func:`Telemetry.ingest_child_spans`).
* :class:`MetricsRegistry` — named :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments with optional labels, exported as
  Prometheus text exposition (:meth:`MetricsRegistry.to_prometheus`) or
  a JSON snapshot (:meth:`MetricsRegistry.snapshot`).

Every metric the repo emits is declared once in :data:`METRICS` — the
table in ``DESIGN.md`` §9 mirrors it — and emitted through the
module-level :data:`obs` facade::

    from repro.runtime.telemetry import obs

    obs.enable()
    with obs.span("compile", cat="compile", backend="verilator"):
        sim = backend.compile(circuit)
    obs.inc("repro_attempts_total", backend="verilator", result="ok")
    obs.tracer.write("trace.json")
    obs.metrics.write_prometheus("metrics.prom")

Timestamps come from an injectable ``clock`` so tests can assert exact
span layouts without touching the wall clock.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricError",
    "MetricsRegistry",
    "NULL_SPAN",
    "StepMeter",
    "Telemetry",
    "Tracer",
    "escape_help",
    "escape_label_value",
    "format_snapshot",
    "metrics_catalog_markdown",
    "obs",
    "parse_prometheus",
]

#: Default histogram bucket upper bounds for durations in seconds.
#: Chosen to resolve both a single fast ``step()`` batch (~1 ms) and a
#: full compile-and-run attempt (tens of seconds).
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)

#: The metric name registry: every metric the repo emits, declared once.
#: ``name -> (type, label names, help)``.  The ``obs`` facade refuses
#: undeclared names so this table (and its DESIGN.md §9 mirror) can
#: never silently drift from the code.
METRICS: dict[str, tuple[str, tuple[str, ...], str]] = {
    "repro_attempts_total": (
        "counter", ("backend", "result"),
        "Job attempts finished, by backend and result "
        "(ok|crash|timeout|error|scan-corruption).",
    ),
    "repro_retries_total": (
        "counter", ("backend",),
        "Retry attempts started (attempt number >= 2).",
    ),
    "repro_backoff_seconds_total": (
        "counter", ("backend",),
        "Total seconds of scheduled retry backoff delay.",
    ),
    "repro_attempt_duration_seconds": (
        "histogram", ("backend",),
        "Wall-clock duration of one attempt (compile + run).",
    ),
    "repro_job_outcomes_total": (
        "counter", ("status", "tenant", "campaign"),
        "Finished jobs by final status (ok|partial|failed|resumed|skipped) "
        "and owning service tenant/campaign ('' outside the service).",
    ),
    "repro_salvaged_jobs_total": (
        "counter", ("backend",),
        "Jobs whose every attempt failed but whose last checkpoint shard "
        "was salvaged (status: partial).",
    ),
    "repro_abandoned_threads_total": (
        "counter", ("backend",),
        "Thread-mode attempts abandoned past the watchdog deadline "
        "(each one leaks a daemon thread).",
    ),
    "repro_checkpoint_writes_total": (
        "counter", ("result", "campaign"),
        "Checkpoint shard writes (written|refused) per service campaign "
        "('' outside the service); refused means an incomplete snapshot "
        "tried to downgrade a complete shard.",
    ),
    "repro_breaker_transitions_total": (
        "counter", ("backend", "to"),
        "Circuit-breaker state transitions, by destination state "
        "(open|half-open|closed).",
    ),
    "repro_breaker_skips_total": (
        "counter", ("backend",),
        "Jobs refused by an open circuit breaker.",
    ),
    "repro_quorum_covers_total": (
        "counter", ("verdict",),
        "Differential quorum verdicts per cover "
        "(unanimous|outvoted|no-quorum).",
    ),
    "repro_outvoted_covers_total": (
        "counter", ("backend",),
        "Covers on which a backend was outvoted by the quorum.",
    ),
    "repro_heartbeat_lag_seconds": (
        "histogram", ("backend",),
        "Gap between consecutive messages from a process-isolated worker.",
    ),
    "repro_worker_kills_total": (
        "counter", ("backend", "reason"),
        "Process workers SIGKILLed by the supervisor (deadline|silence).",
    ),
    "repro_model_cache_hits_total": (
        "counter", ("backend",),
        "Compiled-model cache hits (memory or disk) — compiles skipped.",
    ),
    "repro_model_cache_misses_total": (
        "counter", ("backend",),
        "Compiled-model cache misses — full compiles performed "
        "(corrupt or version-stale entries count as misses).",
    ),
    "repro_backend_cycles_total": (
        "counter", ("backend",),
        "Simulation cycles executed, per backend (flushed in StepMeter "
        "batches; a trailing partial batch may be uncounted).",
    ),
    "repro_backend_cycles_per_second": (
        "gauge", ("backend",),
        "Throughput of the most recent step() batch, per backend.",
    ),
    "repro_backend_fallback_total": (
        "counter", ("backend", "reason"),
        "Compiles degraded to a slower tier (e.g. the c backend falling "
        "back to the treadle JIT), by reason "
        "(no-compiler|unsupported-width).",
    ),
    "repro_shards_merged_total": (
        "counter", (),
        "Shards that passed validation and entered the merge.",
    ),
    "repro_shards_quarantined_total": (
        "counter", ("kind",),
        "Shards refused by validation, by the kind of their first issue.",
    ),
    "repro_pass_duration_seconds": (
        "histogram", ("pass",),
        "Wall-clock duration of one compiler pass.",
    ),
    "repro_lint_findings_total": (
        "counter", ("rule", "severity"),
        "Unsuppressed lint findings emitted by the analysis framework, "
        "by rule ID and severity.",
    ),
    "repro_instrument_covers_total": (
        "counter", ("metric",),
        "Cover statements seen by the minimal-basis minimizer, by metric "
        "(before elision; only minimize=True instrumentation runs count).",
    ),
    "repro_instrument_covers_elided_total": (
        "counter", ("metric",),
        "Cover statements elided by the minimal-basis minimizer, by "
        "metric; each carries a recipe reconstructing its count from the "
        "basis at report time.",
    ),
    "repro_serve_queue_depth": (
        "gauge", ("tenant",),
        "Campaigns waiting in the service admission queue, per tenant.",
    ),
    "repro_serve_active_campaigns": (
        "gauge", (),
        "Campaigns currently executing on the service worker pool.",
    ),
    "repro_serve_admission_rejections_total": (
        "counter", ("tenant", "reason"),
        "Campaign submissions refused by admission control "
        "(queue-full|tenant-quota|draining).",
    ),
    "repro_serve_campaigns_total": (
        "counter", ("tenant", "status"),
        "Service campaigns reaching a terminal status "
        "(done|failed|cancelled).",
    ),
    "repro_serve_breaker_deferrals_total": (
        "counter", ("backend",),
        "Campaign dispatches deferred (kept queued, not failed) because "
        "the backend's circuit breaker was open.",
    ),
    "repro_serve_recovered_campaigns_total": (
        "counter", ("outcome",),
        "Campaigns recovered from the journal at startup: adopted (counts "
        "re-read from a complete shard) or requeued (re-run to the same "
        "deterministic counts).",
    ),
    "repro_serve_journal_appends_total": (
        "counter", ("type",),
        "Write-ahead journal records appended, by record type.",
    ),
    "repro_serve_journal_compactions_total": (
        "counter", (),
        "Journal snapshot compactions (append history folded into one "
        "atomic snapshot record).",
    ),
    "repro_serve_requests_total": (
        "counter", ("endpoint", "code"),
        "HTTP requests served, by endpoint and response status code.",
    ),
    "repro_cluster_workers_live": (
        "gauge", (),
        "Remote workers currently registered with the cluster coordinator.",
    ),
    "repro_cluster_leases_granted_total": (
        "counter", (),
        "Shard leases granted to remote workers (each carries a fresh "
        "monotonic fencing token).",
    ),
    "repro_cluster_leases_expired_total": (
        "counter", ("reason",),
        "Shard leases ended without a clean release "
        "(expired|disconnected|revoked).",
    ),
    "repro_cluster_fenced_rejections_total": (
        "counter", ("kind",),
        "Writes rejected by the fencing check (delta|done) — a zombie "
        "lease holder tried to write after its lease was given away.",
    ),
    "repro_cluster_deltas_merged_total": (
        "counter", ("applied",),
        "Streamed count deltas received from workers, by whether they "
        "merged into the live view (yes) or were skipped as "
        "non-contiguous duplicates/reorders (no).",
    ),
    "repro_cluster_delta_merge_lag_seconds": (
        "histogram", (),
        "Wall-clock age of a worker count delta when the coordinator "
        "merged it (send-to-merge lag).",
    ),
    "repro_cluster_dispatches_total": (
        "counter", ("mode",),
        "Campaign dispatches, by execution venue: a remote worker lease "
        "(remote) or the local thread pool (local).",
    ),
}


def metrics_catalog_markdown() -> str:
    """The DESIGN.md §9 metric table, generated from :data:`METRICS`.

    A drift test diffs this against the pasted table (same pattern as the
    §10 lint-rule catalog), so declaring or relabeling a metric without
    refreshing the docs fails CI.
    """
    lines = [
        "| metric | type | labels | meaning |",
        "|---|---|---|---|",
    ]
    for name in sorted(METRICS):
        kind, labels, help_text = METRICS[name]
        label_text = ", ".join(f"`{label}`" for label in labels) or "—"
        lines.append(
            f"| `{name}` | {kind} | {label_text} | "
            f"{help_text.replace('|', chr(92) + '|')} |"
        )
    return "\n".join(lines)


class MetricError(ValueError):
    """A metric was declared or used inconsistently (name/type/labels)."""


# -- Prometheus text exposition helpers -----------------------------------------


def escape_label_value(value: object) -> str:
    """Escape a label value for the Prometheus text exposition format.

    Backslash, double-quote and newline must be escaped inside the quoted
    label value (`` {name="value"} ``); everything else passes through.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` line: backslash and newline only (no quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _unescape(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        c = value[i]
        if c == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_text(labels: dict[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


# -- metric instruments ---------------------------------------------------------


class _Metric:
    """Shared base for the three instrument kinds.

    Sample storage is keyed by the sorted ``(label, value)`` tuple so a
    label set addresses the same sample regardless of keyword order.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labels: tuple[str, ...] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labels)
        self._samples: dict[tuple[tuple[str, str], ...], object] = {}
        self._lock = threading.Lock()

    def _key(self, labels: dict[str, object]) -> tuple[tuple[str, str], ...]:
        if self.labelnames and set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {sorted(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def samples(self) -> list[tuple[dict[str, str], object]]:
        """All recorded samples as ``(labels, value)`` pairs, sorted."""
        with self._lock:
            return [
                (dict(key), value)
                for key, value in sorted(self._samples.items())
            ]


class Counter(_Metric):
    """A monotonically increasing sum (Prometheus ``counter``)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to the sample for ``labels``."""
        if amount < 0:
            raise MetricError(f"{self.name}: counters only go up, got {amount}")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        """Current sum for ``labels`` (0 if never incremented)."""
        return self._samples.get(self._key(labels), 0)


class Gauge(_Metric):
    """A point-in-time value that can go up and down (``gauge``)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        """Replace the sample for ``labels`` with ``value``."""
        key = self._key(labels)
        with self._lock:
            self._samples[key] = value

    def value(self, **labels: object) -> float:
        """Most recently set value for ``labels`` (0 if never set)."""
        return self._samples.get(self._key(labels), 0)


class Histogram(_Metric):
    """Cumulative-bucket distribution with *fixed* bucket boundaries.

    Buckets follow Prometheus semantics: each boundary is an **inclusive
    upper bound** (``le``), bucket counts are cumulative, and an implicit
    ``+Inf`` bucket equals the total observation count.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labels: tuple[str, ...] = (),
                 buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS) -> None:
        super().__init__(name, help, labels)
        if not buckets or list(buckets) != sorted(buckets):
            raise MetricError(
                f"{name}: bucket boundaries must be non-empty and ascending"
            )
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation of ``value`` into its bucket."""
        key = self._key(labels)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                sample = {"buckets": [0] * len(self.buckets),
                          "sum": 0.0, "count": 0}
                self._samples[key] = sample
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    sample["buckets"][index] += 1
            sample["sum"] += value
            sample["count"] += 1

    def count(self, **labels: object) -> int:
        """Total observations for ``labels``."""
        sample = self._samples.get(self._key(labels))
        return sample["count"] if sample else 0

    def bucket_counts(self, **labels: object) -> dict[float, int]:
        """Cumulative count per bucket boundary (``le`` semantics)."""
        sample = self._samples.get(self._key(labels))
        if sample is None:
            return {bound: 0 for bound in self.buckets}
        return dict(zip(self.buckets, sample["buckets"]))


class MetricsRegistry:
    """A named collection of metrics with Prometheus and JSON exporters.

    Instruments are created idempotently: asking twice for the same name
    returns the same object, and asking for a name with a *different*
    kind raises :class:`MetricError`.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _create(self, cls, name: str, help: str,
                labels: tuple[str, ...], **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise MetricError(
                        f"{name} already registered as a {existing.kind}, "
                        f"not a {cls.kind}"
                    )
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labels: tuple[str, ...] = ()) -> Counter:
        """Create-or-get the :class:`Counter` called ``name``."""
        return self._create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: tuple[str, ...] = ()) -> Gauge:
        """Create-or-get the :class:`Gauge` called ``name``."""
        return self._create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS
                  ) -> Histogram:
        """Create-or-get the :class:`Histogram` called ``name``."""
        return self._create(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        """The metric called ``name``, or None if never created."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        """Sorted names of every registered metric."""
        return sorted(self._metrics)

    # -- exporters ---------------------------------------------------------

    def to_prometheus(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for labels, value in metric.samples():
                if isinstance(metric, Histogram):
                    cumulative = dict(zip(metric.buckets, value["buckets"]))
                    for bound, count in cumulative.items():
                        bucket_labels = dict(labels, le=_format_value(bound))
                        lines.append(
                            f"{name}_bucket{_label_text(bucket_labels)} {count}"
                        )
                    inf_labels = dict(labels, le="+Inf")
                    lines.append(
                        f"{name}_bucket{_label_text(inf_labels)} "
                        f"{value['count']}"
                    )
                    lines.append(
                        f"{name}_sum{_label_text(labels)} "
                        f"{_format_value(value['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{_label_text(labels)} {value['count']}"
                    )
                else:
                    lines.append(
                        f"{name}{_label_text(labels)} {_format_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """A JSON-able snapshot of every metric and sample."""
        out: dict = {}
        for name in self.names():
            metric = self._metrics[name]
            entry: dict = {
                "type": metric.kind,
                "help": metric.help,
                "labels": list(metric.labelnames),
                "samples": [],
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            for labels, value in metric.samples():
                if isinstance(metric, Histogram):
                    entry["samples"].append(
                        {
                            "labels": labels,
                            "buckets": list(value["buckets"]),
                            "sum": value["sum"],
                            "count": value["count"],
                        }
                    )
                else:
                    entry["samples"].append({"labels": labels, "value": value})
        # deterministic: names() is sorted, samples() is sorted
            out[name] = entry
        return {"format": "repro-metrics", "version": 1, "metrics": out}

    def write_prometheus(self, path) -> None:
        """Write :meth:`to_prometheus` output to ``path``."""
        Path(path).write_text(self.to_prometheus())

    def write_json(self, path) -> None:
        """Write the :meth:`snapshot` as pretty-printed JSON to ``path``."""
        Path(path).write_text(
            json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"
        )

    def clear(self) -> None:
        """Drop every registered metric (test/CLI isolation)."""
        with self._lock:
            self._metrics.clear()


def parse_prometheus(text: str) -> dict:
    """Parse Prometheus text exposition back into a snapshot-shaped dict.

    Only the subset :meth:`MetricsRegistry.to_prometheus` emits is
    supported (enough for ``repro stats`` to read its own files).
    Histogram series (``_bucket``/``_sum``/``_count``) are folded back
    under their base metric name.  Raises :class:`MetricError` on lines
    that fit none of the grammar.
    """
    metrics: dict[str, dict] = {}

    def entry(name: str, kind: str = "untyped") -> dict:
        return metrics.setdefault(
            name, {"type": kind, "help": "", "labels": [], "samples": []}
        )

    base_of: dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            entry(name)["help"] = _unescape(help_text)
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            entry(name)["type"] = kind.strip()
            if kind.strip() == "histogram":
                for suffix in ("_bucket", "_sum", "_count"):
                    base_of[name + suffix] = name
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            labeltext, _, valuetext = rest.rpartition("} ")
            labels: dict[str, str] = {}
            for part in _split_labels(labeltext):
                key, _, quoted = part.partition("=")
                # exactly one delimiting quote pair: .strip('"') would also
                # eat a trailing escaped quote (serialized as ``\""``)
                if len(quoted) >= 2 and quoted[0] == '"' and quoted[-1] == '"':
                    quoted = quoted[1:-1]
                labels[key] = _unescape(quoted)
        else:
            name, _, valuetext = line.rpartition(" ")
            labels = {}
        if not name or not valuetext:
            raise MetricError(f"unparseable metrics line: {raw!r}")
        try:
            value = float(valuetext.replace("+Inf", "inf"))
        except ValueError as error:
            raise MetricError(f"bad value in metrics line: {raw!r}") from error
        base = base_of.get(name, name)
        series = "value"
        if base != name:
            series = name[len(base) + 1:]  # bucket | sum | count
        entry(base)["samples"].append(
            {"labels": labels, "series": series, "value": value}
        )
    return {"format": "repro-metrics", "version": 1, "metrics": metrics}


def _split_labels(text: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    i = 0
    while i < len(text):
        c = text[i]
        if c == "\\" and in_quotes:
            current.append(text[i:i + 2])
            i += 2
            continue
        if c == '"':
            in_quotes = not in_quotes
        if c == "," and not in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(c)
        i += 1
    if current:
        parts.append("".join(current))
    return parts


def format_snapshot(snapshot: dict) -> str:
    """Pretty-print a metrics snapshot (the ``repro stats`` renderer).

    Accepts either :meth:`MetricsRegistry.snapshot` output or the dict
    :func:`parse_prometheus` produces from a ``.prom`` file.
    """
    metrics = snapshot.get("metrics", {})
    if not metrics:
        return "(no metrics recorded)"
    lines: list[str] = []
    for name in sorted(metrics):
        entry = metrics[name]
        lines.append(f"{name} ({entry.get('type', 'untyped')})")
        if entry.get("help"):
            lines.append(f"  {entry['help']}")
        samples = entry.get("samples", [])
        if entry.get("type") == "histogram":
            lines += _format_histogram_samples(entry, samples)
        else:
            for sample in samples:
                label = _labelset_text(sample.get("labels", {}))
                lines.append(f"  {label or '(no labels)'}: "
                             f"{_format_value(sample['value'])}")
        if not samples:
            lines.append("  (no samples)")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _labelset_text(labels: dict) -> str:
    return ", ".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _format_histogram_samples(entry: dict, samples: list[dict]) -> list[str]:
    lines: list[str] = []
    # Snapshot form: one sample per labelset with buckets/sum/count.
    if samples and "buckets" in samples[0]:
        bounds = entry.get("buckets", [])
        for sample in samples:
            label = _labelset_text(sample.get("labels", {})) or "(no labels)"
            count, total = sample["count"], sample["sum"]
            mean = total / count if count else 0.0
            lines.append(f"  {label}: count={count} sum={total:.6g} "
                         f"mean={mean:.6g}")
            previous = 0
            for bound, cumulative in zip(bounds, sample["buckets"]):
                in_bucket = cumulative - previous
                previous = cumulative
                if in_bucket:
                    lines.append(f"    le {_format_value(float(bound))}: "
                                 f"{in_bucket}")
        return lines
    # Parsed-prometheus form: series-tagged samples.
    by_label: dict[str, dict] = {}
    for sample in samples:
        labels = dict(sample.get("labels", {}))
        le = labels.pop("le", None)
        key = _labelset_text(labels)
        slot = by_label.setdefault(key, {"buckets": [], "sum": 0.0, "count": 0})
        series = sample.get("series", "value")
        if series == "bucket":
            slot["buckets"].append((le, sample["value"]))
        elif series in ("sum", "count"):
            slot[series] = sample["value"]
    for key, slot in sorted(by_label.items()):
        count, total = slot["count"], slot["sum"]
        mean = total / count if count else 0.0
        lines.append(f"  {key or '(no labels)'}: count={_format_value(count)} "
                     f"sum={total:.6g} mean={mean:.6g}")
        previous = 0.0
        for le, cumulative in slot["buckets"]:
            in_bucket = cumulative - previous
            previous = cumulative
            if in_bucket:
                lines.append(f"    le {le}: {_format_value(in_bucket)}")
    return lines


# -- span tracer ----------------------------------------------------------------


class _NullSpan:
    """The do-nothing span handle returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **args: object) -> None:
        """Ignore extra span args (matches :class:`_SpanHandle.set`)."""


#: The shared no-op span handle; ``obs.span(...)`` returns it when disabled.
NULL_SPAN = _NullSpan()


class _SpanHandle:
    """A live span: opened by ``with tracer.span(...)``, closed on exit."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start = 0.0

    def set(self, **args: object) -> None:
        """Attach extra args to the span before it closes."""
        self.args.update(args)

    def __enter__(self) -> "_SpanHandle":
        self._start = self._tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._tracer.record(
            self.name, self.cat, self._start, self._tracer.clock(), **self.args
        )


class Tracer:
    """Collects completed spans and exports Chrome trace-event JSON.

    Spans are *complete events* (``"ph": "X"``) with microsecond
    timestamps relative to the tracer's epoch (its construction time by
    default).  Nesting is positional, exactly as the trace-event format
    defines it: events on the same ``(pid, tid)`` track nest by time
    containment, so ``with``-statement nesting in the code becomes
    visual nesting in Perfetto with no parent bookkeeping here.

    ``clock``/``pid``/``tid`` are injectable for deterministic tests;
    the defaults are :func:`time.perf_counter`, :func:`os.getpid` and
    :func:`threading.get_ident`.  A forked child inherits the parent's
    epoch, so its ``perf_counter`` timestamps land on the same timeline
    and merge into the parent trace without adjustment.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        pid: Optional[int] = None,
        tid: Optional[Callable[[], int]] = None,
    ) -> None:
        self.clock = clock
        self._pid = pid
        self._tid = tid or threading.get_ident
        self._epoch = clock()
        self._events: list[dict] = []
        self._lock = threading.Lock()

    @property
    def pid(self) -> int:
        """The process id stamped on new spans (live unless injected)."""
        return self._pid if self._pid is not None else os.getpid()

    def span(self, name: str, cat: str = "runtime",
             **args: object) -> _SpanHandle:
        """A context manager recording one span from enter to exit."""
        return _SpanHandle(self, name, cat, dict(args))

    def record(self, name: str, cat: str, start: float, end: float,
               **args: object) -> None:
        """Record an already-measured span (``start``/``end`` in clock
        seconds) — for callers that cannot use the context manager."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": round((start - self._epoch) * 1e6, 3),
            "dur": round(max(0.0, end - start) * 1e6, 3),
            "pid": self.pid,
            "tid": self._tid(),
        }
        if args:
            event["args"] = {k: _jsonable(v) for k, v in args.items()}
        with self._lock:
            self._events.append(event)

    def ingest(self, events: Iterable[dict]) -> None:
        """Append pre-built trace events (e.g. from a worker process)."""
        with self._lock:
            self._events.extend(events)

    def drain(self) -> list[dict]:
        """Remove and return every recorded event (child-side flush)."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def events(self) -> list[dict]:
        """A copy of the recorded events, in record order."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        """Drop recorded events; the epoch is preserved so later spans
        stay on the same timeline (used by forked children)."""
        with self._lock:
            self._events.clear()

    def to_chrome_trace(self) -> dict:
        """The whole trace as a Chrome trace-event JSON object."""
        return {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.runtime.telemetry"},
        }

    def write(self, path) -> None:
        """Write :meth:`to_chrome_trace` as JSON to ``path``."""
        Path(path).write_text(
            json.dumps(self.to_chrome_trace(), indent=1, sort_keys=True) + "\n"
        )


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


# -- the facade -----------------------------------------------------------------


class Telemetry:
    """The one-stop observability facade (module instance: :data:`obs`).

    Bundles a :class:`Tracer` and a :class:`MetricsRegistry` behind an
    enable/disable switch.  While disabled (the default) every call is a
    single attribute check: :meth:`span` returns the shared
    :data:`NULL_SPAN` and the metric helpers return immediately — the
    cost an un-instrumented campaign pays is one ``if``.

    Metric helpers (:meth:`inc` / :meth:`set_gauge` / :meth:`observe`)
    only accept names declared in :data:`METRICS`, creating the typed
    instrument on first use; ad-hoc metrics go through :attr:`metrics`
    directly.
    """

    def __init__(self, enabled: bool = False,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.tracer = Tracer(clock=clock)
        self.metrics = MetricsRegistry()
        self.enabled = enabled
        self._named_tids: set = set()

    def enable(self) -> "Telemetry":
        """Turn span and metric collection on; returns self."""
        self.enabled = True
        return self

    def disable(self) -> "Telemetry":
        """Turn collection off; recorded data is kept until :meth:`reset`."""
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop all recorded spans and metrics (state, not enablement)."""
        self.tracer.clear()
        self.metrics.clear()
        self._named_tids.clear()

    # -- spans -------------------------------------------------------------

    def span(self, name: str, cat: str = "runtime", **args: object):
        """A span context manager, or :data:`NULL_SPAN` when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, cat, **args)

    def ingest_child_spans(self, events: list[dict],
                           child_pid: Optional[int] = None) -> None:
        """Merge spans streamed up from a forked worker into this trace.

        Events are re-parented: their ``pid`` becomes this process's pid
        and their ``tid`` the worker's OS pid, so in Perfetto the worker
        shows up as a ``worker-<pid>`` thread *inside* the supervising
        process, time-aligned with the parent's ``attempt`` span (the
        fork inherits the tracer epoch, so timestamps already agree).
        """
        if not self.enabled or not events:
            return
        pid = self.tracer.pid
        remapped = []
        tids = set()
        for event in events:
            event = dict(event)
            child_tid = child_pid if child_pid is not None else event.get("tid", 0)
            event["pid"] = pid
            event["tid"] = child_tid
            tids.add(child_tid)
            remapped.append(event)
        for tid in sorted(tids - self._named_tids, key=str):
            self._named_tids.add(tid)
            remapped.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"worker-{tid}"},
                }
            )
        self.tracer.ingest(remapped)

    def counter_state(self) -> dict[tuple, float]:
        """Snapshot of every counter sample: (name, label-key) -> value.

        A forked worker takes this at startup — the fork inherits the
        parent's accumulated counters via copy-on-write, so only growth
        *since* the snapshot belongs to the child.
        """
        state: dict[tuple, float] = {}
        for name in self.metrics.names():
            metric = self.metrics.get(name)
            if metric is None or metric.kind != "counter":
                continue
            for labels, value in metric.samples():
                key = tuple(sorted(labels.items()))
                state[(name, key)] = value
        return state

    def counter_deltas(
        self, baseline: dict[tuple, float]
    ) -> list[tuple[str, dict[str, str], float]]:
        """Counter growth since ``baseline`` as (name, labels, delta) rows.

        Only positive deltas are reported (counters are monotonic; a
        fresh registry after ``reset()`` yields nothing spurious).
        """
        deltas: list[tuple[str, dict[str, str], float]] = []
        for (name, key), value in self.counter_state().items():
            grown = value - baseline.get((name, key), 0)
            if grown > 0:
                deltas.append((name, dict(key), grown))
        return deltas

    def ingest_child_counters(
        self, deltas: list[tuple[str, dict[str, str], float]]
    ) -> None:
        """Fold counter deltas streamed up from a forked worker in.

        Declared metrics keep their declared label schema; a child can
        also forward ad-hoc counters, which are created unlabeled-typed
        on the fly.
        """
        if not self.enabled:
            return
        for name, labels, delta in deltas:
            spec = METRICS.get(name)
            if spec is not None and spec[0] == "counter":
                counter = self.metrics.counter(name, spec[2], spec[1])
            else:
                counter = self.metrics.counter(name, labels=tuple(sorted(labels)))
            counter.inc(delta, **labels)

    # -- metrics -----------------------------------------------------------

    def _declared(self, name: str, expected: str):
        spec = METRICS.get(name)
        if spec is None:
            raise MetricError(
                f"undeclared metric {name!r}; add it to "
                "repro.runtime.telemetry.METRICS (and DESIGN.md §9)"
            )
        kind, labels, help_text = spec
        if kind != expected:
            raise MetricError(
                f"{name} is declared as a {kind}, not a {expected}"
            )
        if kind == "counter":
            return self.metrics.counter(name, help_text, labels)
        if kind == "gauge":
            return self.metrics.gauge(name, help_text, labels)
        return self.metrics.histogram(name, help_text, labels)

    def inc(self, name: str, amount: float = 1, **labels: object) -> None:
        """Increment the declared counter ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        self._declared(name, "counter").inc(amount, **labels)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the declared gauge ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        self._declared(name, "gauge").set(value, **labels)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Observe into the declared histogram ``name`` (no-op when
        disabled)."""
        if not self.enabled:
            return
        self._declared(name, "histogram").observe(value, **labels)


class StepMeter:
    """Batches per-``step()`` throughput samples for one backend.

    Compiled-backend step loops often run one cycle per call; resolving
    labels and taking the registry lock for two metric updates every
    simulated cycle would dominate what is being measured.  The meter
    accumulates cycles and wall time locally (two attribute adds) and
    flushes to ``repro_backend_cycles_total`` /
    ``repro_backend_cycles_per_second`` once ``flush_cycles`` cycles
    accrue, so the gauge reads as recent-window throughput.

    ``lanes`` is the bit-parallel multiplier: a swarm simulation advancing
    one clock edge advances ``lanes`` independent executions, so both the
    counter and the gauge report aggregate lane-cycles (lanes x cycles),
    keeping throughput comparable across scalar and packed backends.
    """

    __slots__ = ("backend", "flush_cycles", "lanes", "_cycles", "_seconds")

    def __init__(
        self, backend: str, flush_cycles: int = 256, lanes: int = 1
    ) -> None:
        self.backend = backend
        self.flush_cycles = flush_cycles
        self.lanes = lanes
        self._cycles = 0
        self._seconds = 0.0

    def add(self, cycles: int, seconds: float) -> None:
        """Record one batch; flushes once ``flush_cycles`` cycles accrue."""
        self._cycles += cycles
        self._seconds += seconds
        if self._cycles >= self.flush_cycles:
            self.flush()

    def flush(self) -> None:
        """Push the accumulated sample into the metrics registry now."""
        if not self._cycles:
            return
        lane_cycles = self._cycles * self.lanes
        obs.inc(
            "repro_backend_cycles_total",
            amount=lane_cycles, backend=self.backend,
        )
        if self._seconds > 0:
            obs.set_gauge(
                "repro_backend_cycles_per_second",
                lane_cycles / self._seconds, backend=self.backend,
            )
        self._cycles = 0
        self._seconds = 0.0


#: The process-wide telemetry facade.  Disabled by default; the CLI's
#: ``--trace-out``/``--metrics-out`` flags (and tests/benchmarks) enable
#: it.  Forked workers inherit the enabled flag and tracer epoch.
obs = Telemetry()
