"""Per-backend circuit breakers: stop feeding jobs to a broken backend.

Retries absorb *transient* faults; they are exactly wrong for a
*systematically* broken backend (bad install, wedged license server,
mis-built model), where every attempt burns the full
timeout × (retries + 1) budget and fails anyway.  The breaker notices the
pattern and fails fast instead:

* **closed** — healthy; jobs flow through,
* **open** — ``failure_threshold`` consecutive jobs failed; subsequent
  jobs for this backend are *skipped* (recorded as skipped-by-breaker,
  not failed) until ``probe_after`` jobs have been refused,
* **half-open** — one probe job is let through; success re-closes the
  breaker, failure re-opens it for another ``probe_after`` skips.

Healthy backends are unaffected: breakers are per backend, so a campaign
over {treadle, verilator, broken-essent} keeps its treadle and verilator
throughput while essent's jobs short-circuit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .telemetry import obs

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class CircuitBreaker:
    """Failure-pattern tracker for one backend."""

    backend: str
    failure_threshold: int = 3
    probe_after: int = 2
    state: str = CLOSED
    consecutive_failures: int = 0
    successes: int = 0
    failures: int = 0
    skipped: int = 0
    opens: int = 0
    _skips_since_open: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.probe_after < 1:
            raise ValueError("probe_after must be >= 1")

    def allow(self) -> bool:
        """Whether the next job for this backend should run.

        While open, refuses ``probe_after`` jobs, then transitions to
        half-open and lets the next one through as a probe.
        """
        if self.state == OPEN:
            if self._skips_since_open >= self.probe_after:
                self._transition(HALF_OPEN)
            else:
                self._skips_since_open += 1
                self.skipped += 1
                return False
        return True

    def record_success(self) -> None:
        self.successes += 1
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self._transition(CLOSED)
        self._skips_since_open = 0

    def record_failure(self) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            self._trip()  # probe failed: straight back to open
        elif self.consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        if self.state != OPEN:
            self.opens += 1
        self._transition(OPEN)
        self._skips_since_open = 0

    def _transition(self, to: str) -> None:
        changed = self.state != to
        self.state = to
        if changed and obs.enabled:
            obs.inc(
                "repro_breaker_transitions_total", backend=self.backend, to=to
            )

    def snapshot(self) -> dict:
        return {
            "backend": self.backend,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "successes": self.successes,
            "failures": self.failures,
            "skipped": self.skipped,
            "opens": self.opens,
        }

    def format(self) -> str:
        return (
            f"{self.backend}: {self.state} "
            f"({self.successes} ok, {self.failures} failed, "
            f"{self.skipped} skipped, opened {self.opens}x)"
        )


@dataclass
class BreakerBoard:
    """One breaker per backend, created lazily with shared thresholds."""

    failure_threshold: int = 3
    probe_after: int = 2
    breakers: dict[str, CircuitBreaker] = field(default_factory=dict)

    def breaker(self, backend: str) -> CircuitBreaker:
        if backend not in self.breakers:
            self.breakers[backend] = CircuitBreaker(
                backend,
                failure_threshold=self.failure_threshold,
                probe_after=self.probe_after,
            )
        return self.breakers[backend]

    def allow(self, backend: str) -> bool:
        return self.breaker(backend).allow()

    def record(self, backend: str, ok: bool) -> None:
        breaker = self.breaker(backend)
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    @property
    def tripped(self) -> list[str]:
        """Backends whose breaker is currently open or half-open."""
        return sorted(
            name for name, b in self.breakers.items() if b.state != CLOSED
        )

    def snapshot(self) -> dict:
        return {name: b.snapshot() for name, b in sorted(self.breakers.items())}

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def format(self) -> str:
        if not self.breakers:
            return "breakers: (none)"
        lines = ["breakers:"]
        lines += [f"  {b.format()}" for _, b in sorted(self.breakers.items())]
        return "\n".join(lines)
