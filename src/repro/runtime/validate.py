"""Shard validation and quarantine before merging (§5.3 resilience layer).

The paper's headline property — counts from any backend merge trivially
because they share one namespace — cuts both ways: one corrupted shard
(bit-flipped scan-chain read, truncated JSON, buggy backend) silently
poisons the whole merged map.  This module is the gatekeeper: every shard
is validated against the known cover namespace and counter-width limits
*before* it enters the merge, and bad shards are quarantined into a report
instead of merged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..backends.api import CoverCounts
from ..coverage.common import merge_counts
from .checkpoint import Shard
from .telemetry import obs


@dataclass
class ShardIssue:
    """One reason a shard failed validation."""

    kind: str  # unknown-key | negative-count | overflow | non-int | unreadable
    key: Optional[str] = None
    detail: str = ""

    def format(self) -> str:
        subject = f"{self.key}: " if self.key else ""
        return f"{self.kind}: {subject}{self.detail}"


def validate_shard_counts(
    counts: CoverCounts,
    known_names: Optional[Iterable[str]] = None,
    counter_width: Optional[int] = None,
) -> list[ShardIssue]:
    """Every reason ``counts`` should not be merged.

    * keys not in ``known_names`` (the instrumented circuit's cover
      namespace) — a corrupted or foreign shard,
    * non-integer or negative counts,
    * counts above the ``counter_width`` saturation limit — a backend's
      saturating counter can never legitimately report more.
    """
    issues: list[ShardIssue] = []
    names = set(known_names) if known_names is not None else None
    limit = (1 << counter_width) - 1 if counter_width is not None else None
    for key, count in counts.items():
        if names is not None and key not in names:
            issues.append(ShardIssue("unknown-key", key, "not in the cover namespace"))
        if type(count) is not int:
            issues.append(ShardIssue("non-int", key, f"count {count!r} is not an integer"))
        elif count < 0:
            issues.append(ShardIssue("negative-count", key, f"count {count}"))
        elif limit is not None and count > limit:
            issues.append(
                ShardIssue(
                    "overflow",
                    key,
                    f"count {count} exceeds {counter_width}-bit limit {limit}",
                )
            )
    return issues


@dataclass
class QuarantinedShard:
    """A shard refused by validation, with the evidence."""

    job_id: str
    backend: str
    issues: list[ShardIssue]
    path: Optional[str] = None

    def format(self) -> str:
        lines = [f"shard {self.job_id} ({self.backend})"
                 + (f" [{self.path}]" if self.path else "")]
        lines += [f"  - {issue.format()}" for issue in self.issues]
        return "\n".join(lines)


@dataclass
class QuarantineReport:
    """Outcome of the validated merge: what got in, what got quarantined."""

    merged_job_ids: list[str] = field(default_factory=list)
    quarantined: list[QuarantinedShard] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.quarantined

    def format(self) -> str:
        lines = [
            f"merged {len(self.merged_job_ids)} shard(s): "
            + (", ".join(self.merged_job_ids) or "(none)")
        ]
        if self.quarantined:
            lines.append(f"quarantined {len(self.quarantined)} shard(s):")
            lines += [q.format() for q in self.quarantined]
        else:
            lines.append("quarantined 0 shards")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "merged": self.merged_job_ids,
                "quarantined": [
                    {
                        "job_id": q.job_id,
                        "backend": q.backend,
                        "path": q.path,
                        "issues": [
                            {"kind": i.kind, "key": i.key, "detail": i.detail}
                            for i in q.issues
                        ],
                    }
                    for q in self.quarantined
                ],
            },
            indent=2,
            sort_keys=True,
        )


def merge_shards(
    shards: Iterable[Shard],
    known_names: Optional[Iterable[str]] = None,
    counter_width: Optional[int] = None,
    max_issues_per_shard: int = 50,
) -> tuple[CoverCounts, QuarantineReport]:
    """Validate every shard, merge the good ones, quarantine the rest.

    Quarantine is all-or-nothing per shard: a shard with even one bad
    entry is withheld entirely, because a corruption that produced one
    detectable error has likely produced undetectable ones too.
    """
    names = set(known_names) if known_names is not None else None
    report = QuarantineReport()
    good: list[CoverCounts] = []
    with obs.span("validate", cat="campaign"):
        for shard in shards:
            issues = validate_shard_counts(shard.counts, names, counter_width)
            if issues:
                report.quarantined.append(
                    QuarantinedShard(
                        shard.job_id, shard.backend,
                        issues[:max_issues_per_shard], shard.path,
                    )
                )
                if obs.enabled:
                    obs.inc(
                        "repro_shards_quarantined_total", kind=issues[0].kind
                    )
            else:
                good.append(shard.counts)
                report.merged_job_ids.append(shard.job_id)
                if obs.enabled:
                    obs.inc("repro_shards_merged_total")
    merged = merge_counts(*good, counter_width=counter_width)
    return merged, report
