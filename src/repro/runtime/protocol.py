"""Wire protocol for the coverage fleet: newline-delimited JSON frames.

The cluster coordinator (:mod:`~repro.runtime.cluster`) and its remote
workers speak a deliberately boring protocol: one JSON object per line
over a plain TCP socket.  Boring is the point — every frame is
independently parseable, a torn connection can never corrupt a frame
that already arrived, and the whole conversation can be replayed from a
tcpdump with ``jq``.

Frame inventory (``type`` field selects the schema):

worker → coordinator
    ``hello``      worker registration: ``worker`` id, ``slots``,
                   protocol ``version``.
    ``heartbeat``  liveness + per-shard progress: ``worker``,
                   ``shards`` (``shard id -> {token, cycle}``),
                   ``sent_at`` (sender wall clock, for lag estimation).
    ``delta``      incremental cover counts for one lease: ``shard``,
                   fencing ``token``, ``seq``, ``from_cycle``,
                   ``to_cycle``, additive ``counts``, ``sent_at``.
    ``done``       terminal result for one lease: ``shard``, ``token``,
                   ``status``, ``detail``, full ``counts``,
                   ``cycles_run``, ``attempts``, ``backend_ok``.

coordinator → worker
    ``welcome``    registration ack: ``version``, ``heartbeat_s``,
                   ``lease_s``.
    ``grant``      a lease: ``shard``, fencing ``token``, the campaign
                   ``spec`` (JSON object), ``checkpoint_every``,
                   ``timeout``, ``retries``.
    ``revoke``     the coordinator gave the shard away (lease expired /
                   campaign cancelled): ``shard``, ``token``,
                   ``reason``.  The worker must stop and go quiet.
    ``fenced``     a write carried a dead fencing token: ``shard``,
                   ``token``, ``reason``.  Informational — the write
                   was already rejected server-side.

Unknown ``type`` values are *accepted* by :func:`decode_message` so a
newer peer can add frames without breaking an older one; receivers
ignore types they don't handle.  Known types are validated against
:data:`REQUIRED_FIELDS` so a malformed frame fails loudly at the seam
instead of as a ``KeyError`` deep in coordinator state.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Optional

#: bumped when a frame schema changes incompatibly
PROTOCOL_VERSION = 1

#: refuse absurd frames — a delta for a huge design is megabytes, not
#: gigabytes, and a corrupt peer must not make us buffer unbounded data
MAX_LINE_BYTES = 32 << 20


class ProtocolError(ValueError):
    """A frame violated the wire protocol."""


#: per-type required fields; unknown types pass through unvalidated
REQUIRED_FIELDS = {
    "hello": ("worker", "slots", "version"),
    "heartbeat": ("worker", "shards", "sent_at"),
    "delta": (
        "shard", "token", "seq", "from_cycle", "to_cycle", "counts",
        "sent_at",
    ),
    "done": (
        "shard", "token", "status", "detail", "counts", "cycles_run",
        "attempts", "backend_ok",
    ),
    "welcome": ("version", "heartbeat_s", "lease_s"),
    "grant": (
        "shard", "token", "spec", "checkpoint_every", "timeout", "retries",
    ),
    "revoke": ("shard", "token", "reason"),
    "fenced": ("shard", "token", "reason"),
}


def encode_message(msg: dict) -> bytes:
    """One wire frame: compact canonical JSON plus the line terminator."""
    if "type" not in msg:
        raise ProtocolError("message has no 'type'")
    line = json.dumps(msg, sort_keys=True, separators=(",", ":"))
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds MAX_LINE_BYTES"
        )
    return data


def decode_message(line: bytes) -> dict:
    """Parse and validate one frame; raises :class:`ProtocolError`."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds MAX_LINE_BYTES"
        )
    try:
        msg = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(msg, dict):
        raise ProtocolError(f"frame is {type(msg).__name__}, not an object")
    kind = msg.get("type")
    if not isinstance(kind, str) or not kind:
        raise ProtocolError("frame has no 'type'")
    required = REQUIRED_FIELDS.get(kind)
    if required is not None:
        missing = [f for f in required if f not in msg]
        if missing:
            raise ProtocolError(
                f"{kind} frame missing field(s): {', '.join(missing)}"
            )
    return msg


class LineChannel:
    """Blocking newline-delimited JSON channel over a connected socket.

    The worker side of the protocol (threads + blocking sockets — no
    event loop in the worker process).  ``send`` is lock-guarded so the
    shard threads and the heartbeat thread can share one channel;
    ``recv`` is single-consumer (the worker's read loop).

    ``recv`` returns ``None`` on EOF or a closed/broken socket — the
    caller treats that as "connection over", never as an error to
    retry on the same socket.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._send_lock = threading.Lock()
        self._closed = False

    def send(self, msg: dict) -> None:
        data = encode_message(msg)
        with self._send_lock:
            self._sock.sendall(data)

    def recv(self) -> Optional[dict]:
        try:
            line = self._reader.readline(MAX_LINE_BYTES + 1)
        except (OSError, ValueError):
            return None
        if not line or not line.endswith(b"\n"):
            return None  # EOF, or a frame torn by connection loss
        return decode_message(line.rstrip(b"\n"))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # shutdown() first: it needs no lock and forces a concurrent
        # blocked readline() to return EOF.  Closing the buffered reader
        # straight away would deadlock on the buffer lock that the
        # blocked reader thread holds.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        for closer in (self._reader.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    @property
    def closed(self) -> bool:
        return self._closed
