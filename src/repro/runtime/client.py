"""A small, retrying HTTP client for the coverage service.

The service sheds load with 429 (queue full, tenant over quota) and 503
(draining), and since PR 7 stamps those rejections with a ``Retry-After``
header.  This client is the well-behaved counterpart: it honors the
server's hint when present (plus jitter, so a rejected thundering herd
does not re-arrive as a synchronized thundering herd), and falls back to
seeded exponential backoff when the server does not say.

stdlib-only (urllib), usable from tests, scripts, and the worker-side
tooling alike.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Callable, Optional


class ServiceError(RuntimeError):
    """A request failed after exhausting its retry budget."""

    def __init__(self, message: str, code: Optional[int] = None,
                 payload: Optional[dict] = None) -> None:
        super().__init__(message)
        self.code = code
        self.payload = payload


#: HTTP codes the client treats as transient back-pressure
RETRYABLE = frozenset({429, 503})


def jittered_backoff(base: float, attempt: int,
                     rng: random.Random) -> float:
    """Exponential backoff with full jitter, capped at 64x base."""
    ceiling = base * (2 ** min(attempt, 6))
    return rng.uniform(0, ceiling)


class ServiceClient:
    """Submit/poll helper that respects the service's back-pressure.

    ``retries`` bounds how many 429/503 rejections a single call will
    absorb before raising :class:`ServiceError`.  ``sleep`` is injectable
    so tests assert the chosen delays instead of waiting them out.
    """

    def __init__(
        self,
        base_url: str,
        retries: int = 5,
        backoff_base: float = 0.25,
        seed: int = 0,
        timeout: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.retries = retries
        self.backoff_base = backoff_base
        self.timeout = timeout
        self._sleep = sleep
        self._rng = random.Random(f"{seed}:client")

    # -- transport -------------------------------------------------------------

    def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> tuple[int, dict, Optional[dict]]:
        """One HTTP round-trip: ``(status, headers, json payload)``.

        Headers come back lower-cased.  Error statuses are returned, not
        raised — retry policy lives in the callers.
        """
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as r:
                raw = r.read()
                code = r.status
                response_headers = {
                    k.lower(): v for k, v in r.headers.items()
                }
        except urllib.error.HTTPError as error:
            raw = error.read()
            code = error.code
            response_headers = {
                k.lower(): v for k, v in error.headers.items()
            }
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else None
        except (json.JSONDecodeError, UnicodeDecodeError):
            payload = None
        return code, response_headers, payload

    def _retry_delay(self, headers: dict, payload: Optional[dict],
                     attempt: int) -> float:
        """The server's Retry-After hint (jittered), or our own backoff."""
        hint = headers.get("retry-after")
        if hint is None and isinstance(payload, dict):
            hint = payload.get("retry_after")
        if hint is not None:
            try:
                base = max(0.0, float(hint))
            except (TypeError, ValueError):
                base = self.backoff_base
            # Jitter *around* the server's hint: everyone told "1s" must
            # not come back in the same millisecond.
            return base + self._rng.uniform(0, self.backoff_base)
        return jittered_backoff(self.backoff_base, attempt, self._rng)

    # -- high-level calls ------------------------------------------------------

    def submit(self, spec: dict) -> str:
        """Submit a campaign, absorbing 429/503 rejections; returns its id."""
        last: tuple[int, Optional[dict]] = (0, None)
        for attempt in range(self.retries + 1):
            code, headers, payload = self.request("POST", "/submit", spec)
            if code == 202 and isinstance(payload, dict):
                return payload["id"]
            if code not in RETRYABLE:
                raise ServiceError(
                    f"submit rejected with {code}: {payload}",
                    code=code, payload=payload,
                )
            last = (code, payload)
            if attempt < self.retries:
                self._sleep(self._retry_delay(headers, payload, attempt))
        raise ServiceError(
            f"submit still rejected after {self.retries} retries "
            f"(last: {last[0]} {last[1]})",
            code=last[0], payload=last[1],
        )

    def status(self, campaign_id: str) -> dict:
        code, _, payload = self.request("GET", f"/status/{campaign_id}")
        if code != 200 or not isinstance(payload, dict):
            raise ServiceError(f"status {campaign_id}: {code}", code=code,
                               payload=payload)
        return payload

    def report(self, campaign_id: str) -> tuple[int, Optional[dict]]:
        """The campaign's report: 200 (full or partial) or 409 (no data)."""
        code, _, payload = self.request("GET", f"/report/{campaign_id}")
        return code, payload

    def cancel(self, campaign_id: str) -> tuple[int, Optional[dict]]:
        code, _, payload = self.request("POST", f"/cancel/{campaign_id}")
        return code, payload

    def healthz(self) -> dict:
        code, _, payload = self.request("GET", "/healthz")
        if code != 200 or not isinstance(payload, dict):
            raise ServiceError(f"healthz: {code}", code=code, payload=payload)
        return payload

    def metrics_text(self) -> str:
        request = urllib.request.Request(self.base_url + "/metrics")
        with urllib.request.urlopen(request, timeout=self.timeout) as r:
            return r.read().decode("utf-8")

    def wait(self, campaign_id: str, timeout: float = 60.0,
             poll_s: float = 0.1) -> dict:
        """Poll until the campaign reaches a terminal status."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status = self.status(campaign_id)
            if status.get("status") in ("done", "failed", "cancelled"):
                return status
            self._sleep(poll_s)
        raise ServiceError(
            f"campaign {campaign_id} still {status.get('status')!r} "
            f"after {timeout}s"
        )
