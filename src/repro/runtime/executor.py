"""Fault-tolerant execution of coverage jobs across unreliable backends.

A *job* is one ``(backend, circuit, stimulus)`` triple.  The executor runs
each job with:

* **crash containment** — a raising backend produces a structured
  :class:`~repro.backends.api.RunFailure` instead of an exception that
  kills the campaign,
* **a wall-clock watchdog** — each attempt runs in a worker thread; if it
  exceeds ``timeout`` seconds the attempt is abandoned and recorded as a
  timeout (the portable fallback against a wedged in-process simulator);
  with ``isolation='process'`` the attempt instead runs in a supervised
  forked process (:mod:`~repro.runtime.procworker`) that can actually be
  SIGKILLed and resource-capped,
* **circuit breakers** — with a :class:`~repro.runtime.breaker.\
BreakerBoard`, a backend that keeps failing gets its remaining jobs
  skipped instead of burning the retry budget,
* **bounded retries** — up to ``retries`` extra attempts per job, with
  exponential backoff plus seeded jitter between attempts; every attempt
  gets a *fresh* simulation from the job's factory,
* **checkpoints** — live ``cover_counts()`` snapshots every K cycles via a
  :class:`~repro.runtime.checkpoint.Checkpointer`, so a job that dies
  mid-run still contributes its last-good counts, and
* **validated merge with quarantine** — shards are checked against the
  cover namespace before merging; corrupt shards land in the
  :class:`~repro.runtime.validate.QuarantineReport` instead of the merge.
"""

from __future__ import annotations

import logging
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

from ..backends.api import (
    CoverCounts,
    RunFailure,
    SimulationTimeout,
    has_port,
)
from .breaker import BreakerBoard
from .checkpoint import Checkpointer, Shard, ShardError
from .procworker import (
    ResourceLimits,
    SupervisionPolicy,
    process_isolation_available,
    run_process_attempt,
)
from .telemetry import obs
from .validate import QuarantineReport, QuarantinedShard, ShardIssue, merge_shards

logger = logging.getLogger(__name__)

#: drives a simulation for one cycle: (sim, cycle) -> None (pokes only)
Stimulus = Callable[[object, int], None]


@dataclass
class RunJob:
    """One unit of campaign work.

    ``make_sim`` is a zero-argument factory returning a *fresh* simulation
    — called once per attempt, so retries never reuse a poisoned instance.
    ``stimulus`` (optional) pokes inputs before each cycle's ``step(1)``.
    """

    job_id: str
    backend_name: str
    make_sim: Callable[[], object]
    cycles: int
    stimulus: Optional[Stimulus] = None
    reset_cycles: int = 1

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError(f"job {self.job_id}: cycles must be positive")


@dataclass
class RunOutcome:
    """Everything the campaign knows about one finished job.

    ``abandoned_attempts`` counts thread-mode attempts whose worker thread
    outlived its watchdog and was left behind as a daemon — a leak the
    campaign should surface, not hide.  ``skip_reason`` is set when the
    job never ran at all (e.g. ``breaker-open``).
    """

    job_id: str
    backend: str
    status: str  # ok | partial | failed | resumed | skipped
    counts: CoverCounts = field(default_factory=dict)
    cycles_run: int = 0
    attempts: int = 0
    failures: list[RunFailure] = field(default_factory=list)
    abandoned_attempts: int = 0
    skip_reason: Optional[str] = None

    @property
    def contributed(self) -> bool:
        """Whether this job has any counts to offer the merge."""
        return self.status in ("ok", "partial", "resumed")

    def shard(self) -> Shard:
        return Shard(
            job_id=self.job_id,
            backend=self.backend,
            cycle=self.cycles_run,
            counts=dict(self.counts),
            complete=self.status in ("ok", "resumed"),
        )


@dataclass
class CampaignResult:
    """A full campaign: per-job outcomes plus the validated merge."""

    outcomes: list[RunOutcome]
    merged: CoverCounts
    quarantine: QuarantineReport
    breakers: Optional[BreakerBoard] = None

    @property
    def failures(self) -> list[RunFailure]:
        return [f for o in self.outcomes for f in o.failures]

    @property
    def abandoned_attempts(self) -> int:
        """Worker threads the campaign abandoned (leaked daemons)."""
        return sum(o.abandoned_attempts for o in self.outcomes)

    @property
    def skipped(self) -> list[RunOutcome]:
        return [o for o in self.outcomes if o.status == "skipped"]

    def format(self) -> str:
        lines = []
        for outcome in self.outcomes:
            if outcome.status == "skipped":
                lines.append(
                    f"{outcome.job_id} ({outcome.backend}): skipped "
                    f"({outcome.skip_reason})"
                )
                continue
            lines.append(
                f"{outcome.job_id} ({outcome.backend}): {outcome.status} "
                f"after {outcome.attempts} attempt(s), "
                f"{outcome.cycles_run} cycles, {len(outcome.counts)} points"
            )
            lines += [f"  ! {failure.format()}" for failure in outcome.failures]
        if self.abandoned_attempts:
            lines.append(
                f"abandoned {self.abandoned_attempts} wedged worker thread(s) "
                "— consider isolation='process'"
            )
        if self.breakers is not None:
            lines.append(self.breakers.format())
        lines.append(self.quarantine.format())
        covered = sum(1 for c in self.merged.values() if c)
        lines.append(f"merged coverage: {covered}/{len(self.merged)} points hit")
        return "\n".join(lines)


class _Attempt(threading.Thread):
    """One watchdogged attempt, run to completion or abandoned.

    ``abandoned`` is set by the watchdog when the attempt times out.  The
    drive loop polls it: an abandoned attempt stops stepping and never
    writes another checkpoint, so a slow-but-not-hung attempt that later
    unwedges cannot clobber a successful retry's shard with stale counts.
    """

    def __init__(self, run: Callable[[], None]) -> None:
        super().__init__(daemon=True)
        self._run = run
        self.error: Optional[BaseException] = None
        self.counts: Optional[CoverCounts] = None
        self.cycles_run = 0
        self.abandoned = threading.Event()

    def run(self) -> None:  # noqa: D102 — Thread API
        try:
            self._run()
        except BaseException as error:  # contained, reported as RunFailure
            self.error = error


class Executor:
    """Runs jobs with timeouts, retries, checkpoints, and quarantine.

    ``timeout`` is the per-attempt wall-clock budget in seconds (None
    disables the watchdog).  ``retries`` is the number of *extra* attempts
    after the first.  ``backoff_base`` doubles per retry and gains up to
    ``backoff_base`` seconds of seeded jitter; ``sleep`` is injectable so
    tests can assert the schedule without actually waiting.

    ``isolation`` selects the containment level per attempt:

    * ``"thread"`` — the PR-1 watchdog: a wedged attempt is abandoned as a
      daemon thread (still burning CPU) and a hard interpreter fault kills
      the campaign,
    * ``"process"`` — each attempt runs in a supervised forked process
      (:mod:`~repro.runtime.procworker`): heartbeats over a pipe, SIGKILL
      + reap on deadline or silence, optional in-child rlimit caps
      (``mem_limit_mb``, ``cpu_limit_s``), checkpoint shards streamed to
      the parent so a killed worker still salvages its last-good counts.

    ``breaker`` (a :class:`~repro.runtime.breaker.BreakerBoard`) lets
    :meth:`run_campaign` skip jobs for a backend that keeps failing.
    """

    def __init__(
        self,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff_base: float = 0.05,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        checkpointer: Optional[Checkpointer] = None,
        isolation: str = "thread",
        mem_limit_mb: Optional[int] = None,
        cpu_limit_s: Optional[int] = None,
        heartbeat_timeout: float = 1.0,
        max_missed_heartbeats: int = 5,
        heartbeat_cycles: int = 64,
        breaker: Optional[BreakerBoard] = None,
        tenant: str = "",
        campaign: str = "",
        progress: Optional[Callable[[str, int, CoverCounts], None]] = None,
    ) -> None:
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None to disable)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if isolation not in ("thread", "process"):
            raise ValueError(
                f"isolation must be 'thread' or 'process', got {isolation!r}"
            )
        if isolation == "process" and not process_isolation_available():
            raise RuntimeError(
                "process isolation requires the 'fork' start method (POSIX)"
            )
        if (mem_limit_mb or cpu_limit_s) and isolation != "process":
            raise ValueError("resource limits require isolation='process'")
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.seed = seed
        self.sleep = sleep
        self.checkpointer = checkpointer
        self.isolation = isolation
        self.breaker = breaker
        #: service identity labels on per-job metrics ("" outside the service)
        self.tenant = tenant
        self.campaign = campaign
        #: ``progress(job_id, cycle, counts)`` fires at every checkpoint
        #: boundary with the live cover counts — the streaming seam the
        #: coverage service and cluster workers use to serve partial
        #: results mid-run.  Requires a periodic checkpointer (the hook
        #: shares its cadence); exceptions are contained, never fatal.
        self.progress = progress
        limits = None
        if mem_limit_mb or cpu_limit_s:
            limits = ResourceLimits(
                address_space_mb=mem_limit_mb, cpu_seconds=cpu_limit_s
            )
        self.supervision = SupervisionPolicy(
            deadline=timeout,
            heartbeat_timeout=heartbeat_timeout,
            max_missed_heartbeats=max_missed_heartbeats,
            heartbeat_cycles=heartbeat_cycles,
            limits=limits,
        )

    # -- single job ------------------------------------------------------------

    def backoff_delay(self, attempt: int, job_id: str = "") -> float:
        """Delay before retry ``attempt`` (attempt 2 is the first retry).

        The jitter is seeded per *job*, not just per attempt: with the
        seed alone, every job that fails attempt N sleeps the identical
        "random" delay and the whole campaign retries in lockstep — a
        synchronized stampede against whatever shared resource caused
        the failures in the first place.
        """
        rng = random.Random(f"{self.seed}:{job_id}:backoff:{attempt}")
        return self.backoff_base * (2 ** (attempt - 2)) + rng.uniform(
            0, self.backoff_base
        )

    def run_job(self, job: RunJob) -> RunOutcome:
        with obs.span(
            "job", cat="campaign", job=job.job_id, backend=job.backend_name
        ):
            outcome = self._run_job(job)
        if obs.enabled:
            obs.inc("repro_job_outcomes_total", status=outcome.status,
                    tenant=self.tenant, campaign=self.campaign)
        return outcome

    def _run_job(self, job: RunJob) -> RunOutcome:
        outcome = RunOutcome(job.job_id, job.backend_name, "failed")
        attempt_fn = (
            self._process_attempt if self.isolation == "process"
            else self._thread_attempt
        )
        for attempt in range(1, self.retries + 2):
            if attempt > 1:
                delay = self.backoff_delay(attempt, job.job_id)
                if obs.enabled:
                    obs.inc("repro_retries_total", backend=job.backend_name)
                    obs.inc(
                        "repro_backoff_seconds_total",
                        amount=delay,
                        backend=job.backend_name,
                    )
                self.sleep(delay)
            outcome.attempts = attempt
            with obs.span(
                "attempt", cat="run", job=job.job_id,
                backend=job.backend_name, attempt=attempt,
            ) as span:
                started = time.perf_counter()
                failure = attempt_fn(job, attempt, outcome)
                if obs.enabled:
                    result = "ok" if failure is None else failure.kind
                    span.set(result=result)
                    obs.inc(
                        "repro_attempts_total",
                        backend=job.backend_name, result=result,
                    )
                    obs.observe(
                        "repro_attempt_duration_seconds",
                        time.perf_counter() - started,
                        backend=job.backend_name,
                    )
            if failure is None:
                outcome.status = "ok"
                self._write_shard(outcome)
                return outcome
            outcome.failures.append(failure)
        # All attempts failed: salvage the last checkpoint, if any.
        salvaged = None
        if self.checkpointer is not None:
            with obs.span("salvage", cat="run", job=job.job_id):
                try:
                    salvaged = self.checkpointer.load(job.job_id)
                except (ShardError, OSError):
                    # Corrupt/unreadable shard: nothing to salvage; the file
                    # is reported via the load_all quarantine path, and the
                    # job stays "failed" instead of killing the campaign.
                    salvaged = None
        if salvaged is not None and salvaged.counts:
            outcome.status = "partial"
            outcome.counts = salvaged.counts
            outcome.cycles_run = salvaged.cycle
            if obs.enabled:
                obs.inc("repro_salvaged_jobs_total", backend=job.backend_name)
        return outcome

    def _thread_attempt(
        self, job: RunJob, attempt: int, outcome: RunOutcome
    ) -> Optional[RunFailure]:
        """One watchdogged in-thread attempt; None means success."""
        worker = _Attempt(lambda: self._drive(job, worker))
        started = time.monotonic()
        worker.start()
        worker.join(self.timeout)
        if worker.is_alive():
            # Wedged attempt: abandon the daemon thread, record a timeout.
            # The flag stops the thread from stepping or checkpointing if
            # it ever unwedges, so it cannot race a later attempt's shard.
            worker.abandoned.set()
            outcome.abandoned_attempts += 1
            elapsed = time.monotonic() - started
            if obs.enabled:
                obs.inc(
                    "repro_abandoned_threads_total", backend=job.backend_name
                )
            if outcome.abandoned_attempts == 1:
                # Warn once per job; repeats are counted (outcome +
                # repro_abandoned_threads_total) instead of re-warned.
                logger.warning(
                    "job %s (%s): abandoning wedged worker thread after "
                    "%.1fs elapsed (attempt %d, watchdog %ss) — the daemon "
                    "thread may keep consuming CPU; use isolation='process' "
                    "to kill wedged workers instead",
                    job.job_id, job.backend_name, elapsed, attempt,
                    self.timeout,
                )
            else:
                logger.debug(
                    "job %s (%s): abandoned another wedged worker thread "
                    "after %.1fs elapsed (attempt %d; %d abandoned so far)",
                    job.job_id, job.backend_name, elapsed, attempt,
                    outcome.abandoned_attempts,
                )
            error: BaseException = SimulationTimeout(
                f"attempt exceeded {self.timeout}s wall clock"
            )
        elif worker.error is not None:
            error = worker.error
            if not isinstance(error, Exception):
                raise error  # KeyboardInterrupt etc. must not be swallowed
        else:
            outcome.counts = worker.counts or {}
            outcome.cycles_run = worker.cycles_run
            return None
        return RunFailure(
            job_id=job.job_id,
            backend=job.backend_name,
            kind=RunFailure.kind_of(error),
            attempt=attempt,
            cycle=worker.cycles_run or None,
            message=str(error),
        )

    def _process_attempt(
        self, job: RunJob, attempt: int, outcome: RunOutcome
    ) -> Optional[RunFailure]:
        """One supervised forked-process attempt; None means success."""

        def persist(cycle: int, counts: CoverCounts) -> None:
            if self.checkpointer is not None and self.checkpointer.due(cycle):
                self.checkpointer.write(
                    Shard(
                        job_id=job.job_id,
                        backend=job.backend_name,
                        cycle=cycle,
                        counts=counts,
                        complete=False,
                    )
                )
            self._report_progress(job.job_id, cycle, counts)

        result = run_process_attempt(
            job,
            attempt,
            self.supervision,
            checkpoint_every=(
                self.checkpointer.every if self.checkpointer is not None else 0
            ),
            on_shard=persist,
        )
        if result.status == "ok":
            outcome.counts = result.counts or {}
            outcome.cycles_run = result.cycles_run
            return None
        # killed/died workers only leave their last heartbeat as post-mortem
        cycle = (
            result.cycles_run if result.status == "error"
            else result.last_beat_cycle
        )
        return RunFailure(
            job_id=job.job_id,
            backend=job.backend_name,
            kind=result.failure_kind,
            attempt=attempt,
            cycle=cycle or None,
            message=result.message,
        )

    def _drive(self, job: RunJob, worker: _Attempt) -> None:
        """The attempt body (runs on the worker thread).

        Per-cycle stimulus forces single stepping; without it, cycles
        are batched into ``step(n)`` blocks bounded only by checkpoint
        boundaries, amortizing the step-call overhead (and per-block
        telemetry) over the whole block.
        """
        sim = job.make_sim()
        if job.reset_cycles and has_port(sim, "reset"):
            sim.poke("reset", 1)
            sim.step(job.reset_cycles)
            sim.poke("reset", 0)
        cycle = 0
        while cycle < job.cycles:
            if worker.abandoned.is_set():
                return  # watchdog gave up on this attempt; leave no traces
            if job.stimulus is not None:
                job.stimulus(sim, cycle)
                block = 1
            else:
                block = job.cycles - cycle
                if self.checkpointer and self.checkpointer.every > 0:
                    block = min(block, self.checkpointer.next_due(cycle) - cycle)
            result = sim.step(block)
            cycle += result.cycles
            worker.cycles_run = cycle
            if (
                self.checkpointer
                and self.checkpointer.due(cycle)
                and not worker.abandoned.is_set()
            ):
                counts = dict(sim.cover_counts())
                self.checkpointer.write(
                    Shard(
                        job_id=job.job_id,
                        backend=job.backend_name,
                        cycle=cycle,
                        counts=counts,
                        complete=False,
                    )
                )
                self._report_progress(job.job_id, cycle, counts)
            if result.stopped:
                break
            if result.cycles == 0:
                break  # defensive: a sim refusing to advance must not spin
        if worker.abandoned.is_set():
            return
        worker.counts = dict(sim.cover_counts())

    def _report_progress(self, job_id: str, cycle: int, counts) -> None:
        if self.progress is None:
            return
        try:
            self.progress(job_id, cycle, dict(counts))
        except Exception:  # a broken observer must not fail the attempt
            logger.debug("progress hook raised", exc_info=True)

    def _write_shard(self, outcome: RunOutcome) -> None:
        if self.checkpointer:
            self.checkpointer.write(outcome.shard())

    # -- whole campaign ---------------------------------------------------------

    def run_campaign(
        self,
        jobs: Sequence[RunJob],
        known_names: Optional[Iterable[str]] = None,
        counter_width: Optional[int] = None,
        resume: bool = False,
    ) -> CampaignResult:
        """Run every job, then merge the surviving shards with quarantine.

        With ``resume`` (requires a checkpointer), jobs whose shard on disk
        is marked complete are not re-run — their counts are loaded
        directly, so an interrupted campaign picks up where it left off.

        With a :class:`~repro.runtime.breaker.BreakerBoard` configured,
        jobs for a backend whose breaker is open are recorded as
        ``skipped`` (reason ``breaker-open``) instead of burning the full
        timeout × retries budget on a backend that keeps failing.
        """
        if resume and self.checkpointer is None:
            raise ValueError("resume requires a checkpointer")
        with obs.span("campaign", cat="campaign", jobs=len(jobs)):
            return self._run_campaign(jobs, known_names, counter_width, resume)

    def _run_campaign(
        self,
        jobs: Sequence[RunJob],
        known_names: Optional[Iterable[str]],
        counter_width: Optional[int],
        resume: bool,
    ) -> CampaignResult:
        outcomes: list[RunOutcome] = []
        for job in jobs:
            if resume:
                existing = self._load_resumable(job.job_id)
                if existing is not None:
                    if obs.enabled:
                        obs.inc("repro_job_outcomes_total", status="resumed",
                                tenant=self.tenant, campaign=self.campaign)
                    outcomes.append(
                        RunOutcome(
                            job_id=job.job_id,
                            backend=existing.backend,
                            status="resumed",
                            counts=existing.counts,
                            cycles_run=existing.cycle,
                        )
                    )
                    continue
            if self.breaker is not None and not self.breaker.allow(
                job.backend_name
            ):
                logger.warning(
                    "job %s: breaker open for backend %s — skipping",
                    job.job_id, job.backend_name,
                )
                if obs.enabled:
                    obs.inc(
                        "repro_breaker_skips_total", backend=job.backend_name
                    )
                    obs.inc("repro_job_outcomes_total", status="skipped",
                            tenant=self.tenant, campaign=self.campaign)
                outcomes.append(
                    RunOutcome(
                        job_id=job.job_id,
                        backend=job.backend_name,
                        status="skipped",
                        skip_reason="breaker-open",
                    )
                )
                continue
            outcome = self.run_job(job)
            if self.breaker is not None:
                self.breaker.record(job.backend_name, ok=outcome.status == "ok")
            outcomes.append(outcome)

        shards = [o.shard() for o in outcomes if o.contributed]
        with obs.span("merge", cat="campaign", shards=len(shards)):
            merged, quarantine = merge_shards(shards, known_names, counter_width)
        # Shard files that exist but cannot even be parsed are quarantined too.
        if self.checkpointer:
            _, unreadable = self.checkpointer.load_all()
            for path, detail in unreadable:
                quarantine.quarantined.append(
                    QuarantinedShard(
                        job_id=Path(path).name,
                        backend="?",
                        issues=[ShardIssue("unreadable", None, detail)],
                        path=path,
                    )
                )
        return CampaignResult(outcomes, merged, quarantine, breakers=self.breaker)

    def _load_resumable(self, job_id: str) -> Optional[Shard]:
        assert self.checkpointer is not None
        try:
            shard = self.checkpointer.load(job_id)
        except Exception:
            return None  # corrupt shard: re-run the job, quarantine handles the file
        if shard is not None and shard.complete:
            return shard
        return None


def run_campaign(
    jobs: Sequence[RunJob],
    known_names: Optional[Iterable[str]] = None,
    counter_width: Optional[int] = None,
    **executor_options,
) -> CampaignResult:
    """Convenience one-shot: build an :class:`Executor` and run ``jobs``."""
    return Executor(**executor_options).run_campaign(
        jobs, known_names=known_names, counter_width=counter_width
    )
