"""Fault-tolerant execution of coverage jobs across unreliable backends.

A *job* is one ``(backend, circuit, stimulus)`` triple.  The executor runs
each job with:

* **crash containment** — a raising backend produces a structured
  :class:`~repro.backends.api.RunFailure` instead of an exception that
  kills the campaign,
* **a wall-clock watchdog** — each attempt runs in a worker thread; if it
  exceeds ``timeout`` seconds the attempt is abandoned and recorded as a
  timeout (the only portable defence against a wedged in-process
  simulator),
* **bounded retries** — up to ``retries`` extra attempts per job, with
  exponential backoff plus seeded jitter between attempts; every attempt
  gets a *fresh* simulation from the job's factory,
* **checkpoints** — live ``cover_counts()`` snapshots every K cycles via a
  :class:`~repro.runtime.checkpoint.Checkpointer`, so a job that dies
  mid-run still contributes its last-good counts, and
* **validated merge with quarantine** — shards are checked against the
  cover namespace before merging; corrupt shards land in the
  :class:`~repro.runtime.validate.QuarantineReport` instead of the merge.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

from ..backends.api import (
    CoverCounts,
    RunFailure,
    SimulationTimeout,
    has_port,
)
from .checkpoint import Checkpointer, Shard, ShardError
from .validate import QuarantineReport, QuarantinedShard, ShardIssue, merge_shards

#: drives a simulation for one cycle: (sim, cycle) -> None (pokes only)
Stimulus = Callable[[object, int], None]


@dataclass
class RunJob:
    """One unit of campaign work.

    ``make_sim`` is a zero-argument factory returning a *fresh* simulation
    — called once per attempt, so retries never reuse a poisoned instance.
    ``stimulus`` (optional) pokes inputs before each cycle's ``step(1)``.
    """

    job_id: str
    backend_name: str
    make_sim: Callable[[], object]
    cycles: int
    stimulus: Optional[Stimulus] = None
    reset_cycles: int = 1

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError(f"job {self.job_id}: cycles must be positive")


@dataclass
class RunOutcome:
    """Everything the campaign knows about one finished job."""

    job_id: str
    backend: str
    status: str  # ok | partial | failed | resumed
    counts: CoverCounts = field(default_factory=dict)
    cycles_run: int = 0
    attempts: int = 0
    failures: list[RunFailure] = field(default_factory=list)

    @property
    def contributed(self) -> bool:
        """Whether this job has any counts to offer the merge."""
        return self.status in ("ok", "partial", "resumed")

    def shard(self) -> Shard:
        return Shard(
            job_id=self.job_id,
            backend=self.backend,
            cycle=self.cycles_run,
            counts=dict(self.counts),
            complete=self.status in ("ok", "resumed"),
        )


@dataclass
class CampaignResult:
    """A full campaign: per-job outcomes plus the validated merge."""

    outcomes: list[RunOutcome]
    merged: CoverCounts
    quarantine: QuarantineReport

    @property
    def failures(self) -> list[RunFailure]:
        return [f for o in self.outcomes for f in o.failures]

    def format(self) -> str:
        lines = []
        for outcome in self.outcomes:
            lines.append(
                f"{outcome.job_id} ({outcome.backend}): {outcome.status} "
                f"after {outcome.attempts} attempt(s), "
                f"{outcome.cycles_run} cycles, {len(outcome.counts)} points"
            )
            lines += [f"  ! {failure.format()}" for failure in outcome.failures]
        lines.append(self.quarantine.format())
        covered = sum(1 for c in self.merged.values() if c)
        lines.append(f"merged coverage: {covered}/{len(self.merged)} points hit")
        return "\n".join(lines)


class _Attempt(threading.Thread):
    """One watchdogged attempt, run to completion or abandoned.

    ``abandoned`` is set by the watchdog when the attempt times out.  The
    drive loop polls it: an abandoned attempt stops stepping and never
    writes another checkpoint, so a slow-but-not-hung attempt that later
    unwedges cannot clobber a successful retry's shard with stale counts.
    """

    def __init__(self, run: Callable[[], None]) -> None:
        super().__init__(daemon=True)
        self._run = run
        self.error: Optional[BaseException] = None
        self.counts: Optional[CoverCounts] = None
        self.cycles_run = 0
        self.abandoned = threading.Event()

    def run(self) -> None:  # noqa: D102 — Thread API
        try:
            self._run()
        except BaseException as error:  # contained, reported as RunFailure
            self.error = error


class Executor:
    """Runs jobs with timeouts, retries, checkpoints, and quarantine.

    ``timeout`` is the per-attempt wall-clock budget in seconds (None
    disables the watchdog).  ``retries`` is the number of *extra* attempts
    after the first.  ``backoff_base`` doubles per retry and gains up to
    ``backoff_base`` seconds of seeded jitter; ``sleep`` is injectable so
    tests can assert the schedule without actually waiting.
    """

    def __init__(
        self,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff_base: float = 0.05,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        checkpointer: Optional[Checkpointer] = None,
    ) -> None:
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None to disable)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.seed = seed
        self.sleep = sleep
        self.checkpointer = checkpointer

    # -- single job ------------------------------------------------------------

    def backoff_delay(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (attempt 2 is the first retry)."""
        rng = random.Random(f"{self.seed}:backoff:{attempt}")
        return self.backoff_base * (2 ** (attempt - 2)) + rng.uniform(
            0, self.backoff_base
        )

    def run_job(self, job: RunJob) -> RunOutcome:
        outcome = RunOutcome(job.job_id, job.backend_name, "failed")
        for attempt in range(1, self.retries + 2):
            if attempt > 1:
                self.sleep(self.backoff_delay(attempt))
            outcome.attempts = attempt
            worker = _Attempt(lambda: self._drive(job, worker))
            worker.start()
            worker.join(self.timeout)
            if worker.is_alive():
                # Wedged attempt: abandon the daemon thread, record a timeout.
                # The flag stops the thread from stepping or checkpointing if
                # it ever unwedges, so it cannot race a later attempt's shard.
                worker.abandoned.set()
                error: BaseException = SimulationTimeout(
                    f"attempt exceeded {self.timeout}s wall clock"
                )
            elif worker.error is not None:
                error = worker.error
                if not isinstance(error, Exception):
                    raise error  # KeyboardInterrupt etc. must not be swallowed
            else:
                outcome.status = "ok"
                outcome.counts = worker.counts or {}
                outcome.cycles_run = worker.cycles_run
                self._write_shard(outcome)
                return outcome
            outcome.failures.append(
                RunFailure(
                    job_id=job.job_id,
                    backend=job.backend_name,
                    kind=RunFailure.kind_of(error),
                    attempt=attempt,
                    cycle=worker.cycles_run or None,
                    message=str(error),
                )
            )
        # All attempts failed: salvage the last checkpoint, if any.
        salvaged = None
        if self.checkpointer is not None:
            try:
                salvaged = self.checkpointer.load(job.job_id)
            except (ShardError, OSError):
                # Corrupt/unreadable shard: nothing to salvage; the file is
                # reported via the load_all quarantine path, and the job
                # stays "failed" instead of killing the campaign.
                salvaged = None
        if salvaged is not None and salvaged.counts:
            outcome.status = "partial"
            outcome.counts = salvaged.counts
            outcome.cycles_run = salvaged.cycle
        return outcome

    def _drive(self, job: RunJob, worker: _Attempt) -> None:
        """The attempt body (runs on the worker thread)."""
        sim = job.make_sim()
        if job.reset_cycles and has_port(sim, "reset"):
            sim.poke("reset", 1)
            sim.step(job.reset_cycles)
            sim.poke("reset", 0)
        for cycle in range(job.cycles):
            if worker.abandoned.is_set():
                return  # watchdog gave up on this attempt; leave no traces
            if job.stimulus is not None:
                job.stimulus(sim, cycle)
            result = sim.step(1)
            worker.cycles_run = cycle + 1
            if (
                self.checkpointer
                and self.checkpointer.due(cycle + 1)
                and not worker.abandoned.is_set()
            ):
                self.checkpointer.write(
                    Shard(
                        job_id=job.job_id,
                        backend=job.backend_name,
                        cycle=cycle + 1,
                        counts=dict(sim.cover_counts()),
                        complete=False,
                    )
                )
            if result.stopped:
                break
        if worker.abandoned.is_set():
            return
        worker.counts = dict(sim.cover_counts())

    def _write_shard(self, outcome: RunOutcome) -> None:
        if self.checkpointer:
            self.checkpointer.write(outcome.shard())

    # -- whole campaign ---------------------------------------------------------

    def run_campaign(
        self,
        jobs: Sequence[RunJob],
        known_names: Optional[Iterable[str]] = None,
        counter_width: Optional[int] = None,
        resume: bool = False,
    ) -> CampaignResult:
        """Run every job, then merge the surviving shards with quarantine.

        With ``resume`` (requires a checkpointer), jobs whose shard on disk
        is marked complete are not re-run — their counts are loaded
        directly, so an interrupted campaign picks up where it left off.
        """
        if resume and self.checkpointer is None:
            raise ValueError("resume requires a checkpointer")
        outcomes: list[RunOutcome] = []
        for job in jobs:
            if resume:
                existing = self._load_resumable(job.job_id)
                if existing is not None:
                    outcomes.append(
                        RunOutcome(
                            job_id=job.job_id,
                            backend=existing.backend,
                            status="resumed",
                            counts=existing.counts,
                            cycles_run=existing.cycle,
                        )
                    )
                    continue
            outcomes.append(self.run_job(job))

        shards = [o.shard() for o in outcomes if o.contributed]
        merged, quarantine = merge_shards(shards, known_names, counter_width)
        # Shard files that exist but cannot even be parsed are quarantined too.
        if self.checkpointer:
            _, unreadable = self.checkpointer.load_all()
            for path, detail in unreadable:
                quarantine.quarantined.append(
                    QuarantinedShard(
                        job_id=Path(path).name,
                        backend="?",
                        issues=[ShardIssue("unreadable", None, detail)],
                        path=path,
                    )
                )
        return CampaignResult(outcomes, merged, quarantine)

    def _load_resumable(self, job_id: str) -> Optional[Shard]:
        assert self.checkpointer is not None
        try:
            shard = self.checkpointer.load(job_id)
        except Exception:
            return None  # corrupt shard: re-run the job, quarantine handles the file
        if shard is not None and shard.complete:
            return shard
        return None


def run_campaign(
    jobs: Sequence[RunJob],
    known_names: Optional[Iterable[str]] = None,
    counter_width: Optional[int] = None,
    **executor_options,
) -> CampaignResult:
    """Convenience one-shot: build an :class:`Executor` and run ``jobs``."""
    return Executor(**executor_options).run_campaign(
        jobs, known_names=known_names, counter_width=counter_width
    )
