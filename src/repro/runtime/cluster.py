"""Scale-out coverage fleet: lease-fenced dispatch to remote workers.

PR 6 made one daemon crash-safe; this module makes the *fleet* safe.  A
:class:`ClusterCoordinator` embedded in the coverage service dispatches
campaign shards to remote :class:`ClusterWorker` processes over the
newline-delimited JSON protocol (:mod:`~repro.runtime.protocol`), built
around three robustness mechanisms:

* **Time-bounded leases with monotonic fencing tokens** — a shard is
  dispatched as a lease: one worker, one expiry, one token drawn from a
  strictly increasing counter that is journaled *before* the grant (so a
  coordinator ``kill -9`` can never reissue a token).  A worker that
  crashes, hangs, or partitions simply stops renewing; the lease expires
  and the shard is re-dispatched under a *larger* token.  Any late write
  from the zombie holder carries the dead token and is rejected at the
  door (``repro_cluster_fenced_rejections_total``) — the classic fencing
  argument: correctness never depends on the zombie *knowing* it lost.
* **Live streaming merges** — workers stream incremental count deltas at
  checkpoint cadence; the coordinator folds them into a per-campaign
  :class:`LiveCoverage` view so ``GET /report`` serves partial results
  mid-run.  Deltas are applied only when contiguous (``from_cycle``
  matches the merged view), which makes duplicated, reordered, and
  dropped frames all safe: the view may lag, it can never double-count.
  The ``done`` frame carries authoritative full counts — the live view
  is advisory, the terminal counts are exact.
* **Determinism as the repair mechanism** — re-dispatch re-runs the spec
  from cycle 0 with the same seed (fresh per-token scratch dir), so a
  shard that bounced through three workers still produces counts
  bit-identical to a single-node run.  There is no state handoff to get
  wrong, which is why partitions are merely slow, never corrupting.

The coordinator lives on the service's asyncio loop (all its state is
loop-thread-confined, like the rest of the service); workers are plain
blocking-socket processes driving the same :func:`~repro.runtime.\
service.execute_spec` the local pool uses.  Zero workers attached means
the service degrades to its local thread pool — the fleet is an
accelerator, not a dependency.
"""

from __future__ import annotations

import asyncio
import logging
import os
import random
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional

from .faults import FaultyChannel, NetFaultPlan
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    LineChannel,
    ProtocolError,
    decode_message,
    encode_message,
)
from .telemetry import obs

logger = logging.getLogger(__name__)


class LeaseError(ValueError):
    """A lease operation violated the table's invariants."""


@dataclass
class Lease:
    """One worker's time-bounded, fenced claim on one shard."""

    shard: str
    worker: str
    token: int
    granted_at: float
    expires_at: float
    cycle: int = 0


class LeaseTable:
    """The lease/fencing state machine (coordinator side).

    Invariants (the hypothesis stateful test drives these):

    * at most one live lease per shard;
    * fencing tokens are unique and strictly increase across *all*
      grants, including re-grants of the same shard;
    * a write is accepted only if its ``(shard, worker, token)`` names
      the current live lease — once a shard is re-granted, every token
      below the new one is dead forever.

    Expiry is explicit (:meth:`expire` with a caller-supplied clock), so
    tests can drive time instead of sleeping.
    """

    def __init__(self, lease_s: float = 10.0, next_token: int = 1) -> None:
        if lease_s <= 0:
            raise LeaseError("lease_s must be positive")
        if next_token < 1:
            raise LeaseError("next_token must be >= 1")
        self.lease_s = lease_s
        self.next_token = next_token
        self._live: dict[str, Lease] = {}

    def __len__(self) -> int:
        return len(self._live)

    def get(self, shard: str) -> Optional[Lease]:
        return self._live.get(shard)

    def grant(self, shard: str, worker: str,
              now: Optional[float] = None) -> Lease:
        """Grant ``shard`` to ``worker`` under a fresh fencing token."""
        if shard in self._live:
            raise LeaseError(
                f"shard {shard} already leased to "
                f"{self._live[shard].worker}#{self._live[shard].token}"
            )
        now = time.monotonic() if now is None else now
        lease = Lease(
            shard=shard, worker=worker, token=self.next_token,
            granted_at=now, expires_at=now + self.lease_s,
        )
        self.next_token += 1
        self._live[shard] = lease
        return lease

    def renew(self, shard: str, worker: str, token: int,
              now: Optional[float] = None) -> bool:
        """Push the expiry out; False if the lease is not the live one."""
        if self.check_write(shard, worker, token) is not None:
            return False
        now = time.monotonic() if now is None else now
        self._live[shard].expires_at = now + self.lease_s
        return True

    def check_write(self, shard: str, worker: str,
                    token: int) -> Optional[str]:
        """Why a write must be rejected (None = the write is current).

        The three reasons are diagnostic flavors of one fact — the
        ``(shard, worker, token)`` triple does not name the live lease:
        ``no-live-lease`` (expired/released and not re-granted),
        ``stale-token`` (the shard moved on under a newer token), and
        ``wrong-holder`` (token forged or cross-wired worker id).
        """
        lease = self._live.get(shard)
        if lease is None:
            return "no-live-lease"
        if lease.token != token:
            return "stale-token"
        if lease.worker != worker:
            return "wrong-holder"
        return None

    def release(self, shard: str, token: int) -> bool:
        """Clean hand-back at ``done``; False if the lease moved on."""
        lease = self._live.get(shard)
        if lease is None or lease.token != token:
            return False
        del self._live[shard]
        return True

    def revoke(self, shard: str) -> Optional[Lease]:
        """Forcibly end the live lease (cancel, worker disconnect)."""
        return self._live.pop(shard, None)

    def expire(self, now: Optional[float] = None) -> list[Lease]:
        """Remove and return every lease whose expiry has passed."""
        now = time.monotonic() if now is None else now
        dead = [l for l in self._live.values() if l.expires_at <= now]
        for lease in dead:
            del self._live[lease.shard]
        return dead


@dataclass
class LiveCoverage:
    """A campaign's streaming partial counts (advisory, mid-run view)."""

    counts: dict = field(default_factory=dict)
    cycle: int = 0
    updated_at: float = 0.0  # monotonic; 0 = no delta merged yet
    source: str = "local"


@dataclass
class RemoteWorker:
    """Coordinator-side state for one connected worker."""

    id: str
    slots: int
    writer: object  # asyncio.StreamWriter
    connected_at: float
    last_seen: float
    shards: set = field(default_factory=set)

    @property
    def free_slots(self) -> int:
        return self.slots - len(self.shards)


class ClusterCoordinator:
    """The fleet brain, embedded in :class:`~repro.runtime.service.\
CoverageService`.

    Owns the worker registry and the lease table; defers all campaign
    bookkeeping (journal, requeue, terminal states) to the service's
    callbacks so there is exactly one owner of campaign state.  Runs
    entirely on the service's event loop.
    """

    def __init__(self, service) -> None:
        self.service = service
        config = service.config
        self.leases = LeaseTable(
            lease_s=config.lease_s, next_token=service._next_fence
        )
        self.workers: dict[str, RemoteWorker] = {}
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        config = self.service.config
        self._server = await asyncio.start_server(
            self._handle_worker, config.host, config.cluster_port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("cluster coordinator on %s:%d", config.host, self.port)

    def close(self) -> None:
        if self._server is not None:
            self._server.close()
        for worker in list(self.workers.values()):
            try:
                worker.writer.close()
            except Exception:
                pass
        self.workers.clear()
        if obs.enabled:
            obs.set_gauge("repro_cluster_workers_live", 0)

    # -- worker connections ----------------------------------------------------

    async def _handle_worker(self, reader, writer) -> None:
        worker: Optional[RemoteWorker] = None
        try:
            hello = await self._read_frame(reader)
            if hello is None or hello.get("type") != "hello":
                return
            if int(hello.get("version", 0)) != PROTOCOL_VERSION:
                return  # a future peer can down-negotiate; v1 just drops
            worker = self._register(
                str(hello["worker"]), int(hello["slots"]), writer
            )
            config = self.service.config
            self._send(worker, {
                "type": "welcome",
                "version": PROTOCOL_VERSION,
                "heartbeat_s": config.cluster_heartbeat_s,
                "lease_s": config.lease_s,
            })
            if self.service._wake is not None:
                self.service._wake.set()  # new capacity: dispatch now
            while True:
                msg = await self._read_frame(reader)
                if msg is None:
                    break
                self._on_message(worker, msg)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if worker is not None:
                self._deregister(worker)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_frame(self, reader) -> Optional[dict]:
        try:
            line = await reader.readline()
        except (ValueError, ConnectionError):
            return None  # over-limit or broken: treat as connection over
        if not line or not line.endswith(b"\n"):
            return None
        try:
            return decode_message(line.rstrip(b"\n"))
        except ProtocolError as error:
            logger.warning("dropping bad frame from worker: %s", error)
            return {"type": "_bad"}  # keep the connection; skip the frame

    def _register(self, worker_id: str, slots: int, writer) -> RemoteWorker:
        stale = self.workers.get(worker_id)
        if stale is not None:
            # A reconnect under the same id: the old socket is dead.
            self._deregister(stale)
        now = time.monotonic()
        worker = RemoteWorker(
            id=worker_id, slots=max(1, slots), writer=writer,
            connected_at=now, last_seen=now,
        )
        self.workers[worker_id] = worker
        if obs.enabled:
            obs.set_gauge("repro_cluster_workers_live", len(self.workers))
        logger.info("worker %s joined (%d slots)", worker_id, worker.slots)
        return worker

    def _deregister(self, worker: RemoteWorker) -> None:
        if self.workers.get(worker.id) is not worker:
            return  # already replaced by a reconnect
        del self.workers[worker.id]
        if obs.enabled:
            obs.set_gauge("repro_cluster_workers_live", len(self.workers))
        for shard in sorted(worker.shards):
            lease = self.leases.get(shard)
            if lease is not None and lease.worker == worker.id:
                self.leases.revoke(shard)
                if obs.enabled:
                    obs.inc("repro_cluster_leases_expired_total",
                            reason="disconnected")
                self.service._remote_lost(
                    shard, f"worker {worker.id} disconnected"
                )
        worker.shards.clear()
        logger.info("worker %s left", worker.id)

    # -- inbound frames --------------------------------------------------------

    def _on_message(self, worker: RemoteWorker, msg: dict) -> None:
        worker.last_seen = time.monotonic()
        kind = msg.get("type")
        if kind == "heartbeat":
            self._on_heartbeat(worker, msg)
        elif kind == "delta":
            self._on_delta(worker, msg)
        elif kind == "done":
            self._on_done(worker, msg)
        # unknown types: forward-compat, ignored

    def _on_heartbeat(self, worker: RemoteWorker, msg: dict) -> None:
        shards = msg.get("shards")
        if not isinstance(shards, dict):
            return
        now = time.monotonic()
        for shard, state in shards.items():
            if not isinstance(state, dict):
                continue
            token = int(state.get("token", 0))
            if self.leases.renew(shard, worker.id, token, now):
                lease = self.leases.get(shard)
                lease.cycle = max(lease.cycle, int(state.get("cycle", 0)))
            else:
                # The worker is beating for a lease it no longer holds —
                # a zombie that missed (or never received) its revoke.
                self._send(worker, {
                    "type": "revoke", "shard": shard, "token": token,
                    "reason": "lease is no longer yours",
                })

    def _on_delta(self, worker: RemoteWorker, msg: dict) -> None:
        shard = str(msg["shard"])
        token = int(msg["token"])
        verdict = self.leases.check_write(shard, worker.id, token)
        if verdict is not None:
            if obs.enabled:
                obs.inc("repro_cluster_fenced_rejections_total", kind="delta")
            self._send(worker, {
                "type": "fenced", "shard": shard, "token": token,
                "reason": verdict,
            })
            return
        self.leases.renew(shard, worker.id, token)
        campaign = self.service.campaigns.get(shard)
        live = campaign.live if campaign is not None else None
        applied = False
        if live is not None and int(msg["from_cycle"]) == live.cycle:
            counts = msg["counts"]
            if isinstance(counts, dict):
                for name, delta in counts.items():
                    live.counts[name] = live.counts.get(name, 0) + int(delta)
                live.cycle = int(msg["to_cycle"])
                live.updated_at = time.monotonic()
                campaign.cycles_run = max(campaign.cycles_run, live.cycle)
                applied = True
        # Non-contiguous deltas (duplicates, reorders, gaps after a drop)
        # are skipped, never merged out of order: the live view may lag
        # behind the worker, it can never double-count.
        if obs.enabled:
            obs.inc("repro_cluster_deltas_merged_total",
                    applied="yes" if applied else "no")
            sent_at = msg.get("sent_at")
            if applied and isinstance(sent_at, (int, float)):
                obs.observe("repro_cluster_delta_merge_lag_seconds",
                            max(0.0, time.time() - float(sent_at)))

    def _on_done(self, worker: RemoteWorker, msg: dict) -> None:
        shard = str(msg["shard"])
        token = int(msg["token"])
        verdict = self.leases.check_write(shard, worker.id, token)
        if verdict is not None:
            if obs.enabled:
                obs.inc("repro_cluster_fenced_rejections_total", kind="done")
            self._send(worker, {
                "type": "fenced", "shard": shard, "token": token,
                "reason": verdict,
            })
            return
        self.leases.release(shard, token)
        worker.shards.discard(shard)
        counts = msg["counts"] if isinstance(msg["counts"], dict) else None
        self.service._finish_remote(
            shard,
            status=str(msg["status"]),
            detail=str(msg["detail"]),
            counts=counts,
            cycles_run=int(msg["cycles_run"]),
            attempts=int(msg["attempts"]),
            backend_ok=bool(msg["backend_ok"]),
            worker=worker.id,
            token=token,
        )

    # -- dispatch (called by the service scheduler) -----------------------------

    def pick_worker(self) -> Optional[RemoteWorker]:
        """The most-idle worker with a free slot, or None."""
        best = None
        for worker in self.workers.values():
            if worker.free_slots <= 0:
                continue
            if best is None or worker.free_slots > best.free_slots:
                best = worker
        return best

    def dispatch(self, campaign, worker: RemoteWorker) -> bool:
        """Lease ``campaign`` to ``worker``; False if the grant failed.

        Fencing-token durability: the ``lease`` record is journaled
        *before* the grant frame can possibly reach the worker, so a
        coordinator crash after dispatch recovers with ``next_fence``
        past this token and can never arm a second worker with an equal
        one.
        """
        config = self.service.config
        token = self.leases.next_token
        if not self.service._journal_lease(campaign.id, worker.id, token):
            return False
        lease = self.leases.grant(campaign.id, worker.id)
        assert lease.token == token  # single allocator, loop-thread only
        worker.shards.add(campaign.id)
        campaign.live = LiveCoverage(source=f"{worker.id}#{token}")
        spec = campaign.spec
        self._send(worker, {
            "type": "grant",
            "shard": campaign.id,
            "token": token,
            "spec": spec.to_json_obj(),
            "checkpoint_every": (
                spec.checkpoint_every or config.checkpoint_every
            ),
            "timeout": (
                spec.deadline_s if spec.deadline_s is not None
                else config.default_timeout
            ),
            "retries": config.retries,
        })
        if obs.enabled:
            obs.inc("repro_cluster_leases_granted_total")
        return True

    def revoke(self, campaign_id: str, reason: str) -> None:
        """End a remote campaign's lease (cancel path)."""
        lease = self.leases.revoke(campaign_id)
        if lease is None:
            return
        if obs.enabled:
            obs.inc("repro_cluster_leases_expired_total", reason="revoked")
        worker = self.workers.get(lease.worker)
        if worker is not None:
            worker.shards.discard(campaign_id)
            self._send(worker, {
                "type": "revoke", "shard": campaign_id,
                "token": lease.token, "reason": reason,
            })

    def tick(self, now: Optional[float] = None) -> None:
        """Expire overdue leases; called from the scheduler loop."""
        for lease in self.leases.expire(now):
            if obs.enabled:
                obs.inc("repro_cluster_leases_expired_total",
                        reason="expired")
            worker = self.workers.get(lease.worker)
            if worker is not None:
                worker.shards.discard(lease.shard)
                self._send(worker, {
                    "type": "revoke", "shard": lease.shard,
                    "token": lease.token, "reason": "lease expired",
                })
            logger.warning(
                "lease %s#%d on %s expired; re-dispatching",
                lease.worker, lease.token, lease.shard,
            )
            self.service._remote_lost(
                lease.shard,
                f"lease expired on {lease.worker} (partition or hang)",
            )

    def snapshot(self) -> dict:
        """The /healthz view of the fleet."""
        now = time.monotonic()
        return {
            "workers": [
                {
                    "id": w.id,
                    "slots": w.slots,
                    "shards": sorted(w.shards),
                    "last_seen_s": round(now - w.last_seen, 3),
                }
                for w in sorted(self.workers.values(), key=lambda w: w.id)
            ],
            "leases": len(self.leases),
        }

    def _send(self, worker: RemoteWorker, msg: dict) -> None:
        """Fire-and-forget a frame; a dead socket surfaces as EOF later."""
        try:
            worker.writer.write(encode_message(msg))
        except Exception:
            pass


# -- worker side ---------------------------------------------------------------


@dataclass
class WorkerConfig:
    """Everything ``repro worker`` can tune."""

    host: str
    port: int
    slots: int = 2
    state_dir: Optional[Path] = None
    isolation: str = "thread"
    reconnect: int = 0          # extra connection attempts after a failure
    backoff_base: float = 0.5
    seed: int = 0
    worker_id: str = ""
    fault_plan: Optional[NetFaultPlan] = None
    telemetry: bool = False
    #: force minimal-basis counting on leased shards even when the spec
    #: does not request it; the ``done`` frame still carries full counts
    #: because :func:`~repro.runtime.service.execute_spec` reconstructs
    min_instrument: bool = False

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError("slots must be >= 1")
        if self.reconnect < 0:
            raise ValueError("reconnect must be >= 0")
        if self.state_dir is not None:
            self.state_dir = Path(self.state_dir)


@dataclass
class _ShardRun:
    """One granted lease being executed on this worker."""

    token: int
    cancel: threading.Event = field(default_factory=threading.Event)
    thread: Optional[threading.Thread] = None
    cycle: int = 0
    suppressed: bool = False  # revoked/fenced: never send done


class ClusterWorker:
    """A remote execution node: connect, lease shards, stream deltas.

    Deliberately dumb — all cluster intelligence (leases, fencing,
    merging, requeue) lives in the coordinator.  The worker connects,
    says hello, and then does exactly what it is told: run granted specs
    through the same :func:`~repro.runtime.service.execute_spec` the
    service's local pool uses (same determinism, same resume semantics),
    streaming a count delta at every checkpoint boundary and a ``done``
    with authoritative full counts at the end.

    A ``revoke`` (or a ``fenced`` rejection) suppresses the run: the
    cancel flag stops it at the next cycle boundary and its terminal
    frame is never sent.  Each grant executes in a fresh per-token
    scratch directory, so a re-granted shard re-runs from cycle 0 and
    reproduces bit-identical counts instead of resuming half-trusted
    local state.
    """

    def __init__(self, config: WorkerConfig) -> None:
        self.config = config
        self.id = config.worker_id or (
            f"w-{os.getpid()}-{random.getrandbits(24):06x}"
        )
        self._active: dict[str, _ShardRun] = {}
        self._channel = None
        self._stop = threading.Event()
        self._state_dir = config.state_dir
        self._tmp = None
        if self._state_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-worker-")
            self._state_dir = Path(self._tmp.name)

    # -- lifecycle -------------------------------------------------------------

    def run(self) -> int:
        """Connect (and reconnect) until stopped; returns an exit code."""
        attempts_left = self.config.reconnect
        rng = random.Random(f"{self.config.seed}:{self.id}:reconnect")
        attempt = 0
        while not self._stop.is_set():
            try:
                self.run_once()
                if self._stop.is_set():
                    return 0
                attempt = 0  # a successful session resets the budget
            except OSError as error:
                logger.warning("worker %s: connection failed: %s",
                               self.id, error)
            if self._stop.is_set():
                return 0
            if attempts_left <= 0:
                return 1
            attempts_left -= 1
            attempt += 1
            delay = self.config.backoff_base * (2 ** min(attempt - 1, 6))
            self._stop.wait(delay + rng.uniform(0, self.config.backoff_base))
        return 0

    def run_once(self) -> None:
        """One connected session: hello, welcome, then serve grants."""
        sock = socket.create_connection(
            (self.config.host, self.config.port), timeout=10
        )
        sock.settimeout(None)
        channel = LineChannel(sock)
        if self.config.fault_plan is not None:
            channel = FaultyChannel(channel, self.config.fault_plan)
        self._channel = channel
        heartbeat: Optional[threading.Thread] = None
        try:
            channel.send({
                "type": "hello", "worker": self.id,
                "slots": self.config.slots, "version": PROTOCOL_VERSION,
            })
            welcome = channel.recv()
            if welcome is None or welcome.get("type") != "welcome":
                raise OSError("coordinator did not welcome us")
            period = float(welcome.get("heartbeat_s", 2.0))
            heartbeat = threading.Thread(
                target=self._heartbeat_loop, args=(channel, period),
                name=f"{self.id}-heartbeat", daemon=True,
            )
            heartbeat.start()
            logger.info("worker %s connected to %s:%d", self.id,
                        self.config.host, self.config.port)
            while not self._stop.is_set():
                msg = channel.recv()
                if msg is None:
                    break
                kind = msg.get("type")
                if kind == "grant":
                    self._on_grant(msg)
                elif kind in ("revoke", "fenced"):
                    self._on_revoke(msg)
        finally:
            # The session is over: nothing we compute can be delivered,
            # and the coordinator has already started revoking our
            # leases.  Stop every run and go quiet.
            for run in list(self._active.values()):
                run.suppressed = True
                run.cancel.set()
            channel.close()
            if self._channel is channel:
                self._channel = None
            if heartbeat is not None:
                heartbeat.join(timeout=5)

    def stop(self) -> None:
        self._stop.set()
        channel = self._channel
        if channel is not None:
            channel.close()  # unblocks the recv loop

    # -- grants ----------------------------------------------------------------

    def _on_grant(self, grant: dict) -> None:
        shard = str(grant["shard"])
        stale = self._active.get(shard)
        if stale is not None:
            # A re-grant over an unfinished run (shouldn't happen while
            # we hold the lease, but the coordinator is authoritative).
            stale.suppressed = True
            stale.cancel.set()
        run = _ShardRun(token=int(grant["token"]))
        run.thread = threading.Thread(
            target=self._run_shard, args=(shard, grant, run),
            name=f"{self.id}-{shard}", daemon=True,
        )
        self._active[shard] = run
        run.thread.start()

    def _on_revoke(self, msg: dict) -> None:
        run = self._active.get(str(msg["shard"]))
        if run is not None and run.token == int(msg["token"]):
            run.suppressed = True
            run.cancel.set()

    def _run_shard(self, shard: str, grant: dict, run: _ShardRun) -> None:
        channel = self._channel
        try:
            # Lazy imports: service.py imports this module at load time.
            from .checkpoint import Checkpointer
            from .service import CampaignSpec, execute_spec

            spec = CampaignSpec.from_json_obj(grant["spec"])
            if self.config.min_instrument and not spec.min_instrument:
                spec = replace(spec, min_instrument=True)
            # Fresh scratch per (shard, token): a re-granted shard starts
            # from cycle 0 and replays the same seeded stimulus, which is
            # what makes bounced shards bit-identical.
            scratch = self._state_dir / f"{shard}.t{run.token}"
            checkpointer = Checkpointer(
                scratch,
                every=int(grant.get("checkpoint_every") or 500),
                fsync=False,
                campaign=shard,
            )
            last_counts: dict = {}
            state = {"cycle": 0, "seq": 0}

            def stream_delta(job_id: str, cycle: int, counts: dict) -> None:
                run.cycle = cycle
                if run.suppressed or channel is None:
                    return
                delta = {
                    name: count - last_counts.get(name, 0)
                    for name, count in counts.items()
                    if count != last_counts.get(name, 0)
                }
                state["seq"] += 1
                message = {
                    "type": "delta", "shard": shard, "token": run.token,
                    "seq": state["seq"], "from_cycle": state["cycle"],
                    "to_cycle": cycle, "counts": delta,
                    "sent_at": time.time(),
                }
                last_counts.clear()
                last_counts.update(counts)
                state["cycle"] = cycle
                try:
                    channel.send(message)
                except (OSError, ValueError):
                    pass  # link gone; the read loop will notice

            timeout = grant.get("timeout")
            outcome = execute_spec(
                spec, shard, checkpointer,
                cancel_event=run.cancel,
                isolation=self.config.isolation,
                timeout=float(timeout) if timeout is not None else None,
                retries=int(grant.get("retries") or 0),
                progress=stream_delta,
            )
            if run.suppressed or channel is None:
                return
            status = {"interrupted": "interrupted"}.get(
                outcome.status, outcome.status
            )
            try:
                channel.send({
                    "type": "done", "shard": shard, "token": run.token,
                    "status": status, "detail": outcome.detail,
                    "counts": outcome.counts or {},
                    "cycles_run": outcome.cycles_run,
                    "attempts": outcome.attempts,
                    "backend_ok": outcome.backend_ok,
                })
            except (OSError, ValueError):
                pass
        except Exception:
            logger.exception("worker %s: shard %s failed locally",
                             self.id, shard)
            if not run.suppressed and channel is not None:
                try:
                    channel.send({
                        "type": "done", "shard": shard, "token": run.token,
                        "status": "failed",
                        "detail": "worker-local execution error",
                        "counts": {}, "cycles_run": 0, "attempts": 0,
                        "backend_ok": False,
                    })
                except (OSError, ValueError):
                    pass
        finally:
            # Identity check: a re-grant may have installed a newer run
            # for this shard; only the owner removes its own entry.
            if self._active.get(shard) is run:
                del self._active[shard]

    # -- heartbeats ------------------------------------------------------------

    def _heartbeat_loop(self, channel, period: float) -> None:
        while not self._stop.is_set() and self._channel is channel:
            shards = {
                shard: {"token": run.token, "cycle": run.cycle}
                for shard, run in list(self._active.items())
                if not run.suppressed
            }
            try:
                channel.send({
                    "type": "heartbeat", "worker": self.id,
                    "shards": shards, "sent_at": time.time(),
                })
            except (OSError, ValueError):
                return
            if self._stop.wait(period):
                return
