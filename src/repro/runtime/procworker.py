"""Process-isolated attempt execution with heartbeat supervision.

PR 1's watchdog contains hangs at *thread* granularity: a wedged attempt
is abandoned as a daemon thread that keeps burning CPU, and a hard
interpreter fault (OOM, segfault in a pathological design, runaway C
recursion) still kills the whole campaign.  This module is the next level
of containment: each attempt runs in a forked OS process that the
supervisor can actually kill.

The protocol, over a one-way ``multiprocessing`` pipe (child → parent):

* ``("beat", cycle, digest)`` — liveness + progress: the last completed
  cycle and a CRC-32 digest of the live cover counts,
* ``("shard", cycle, counts)`` — a periodic checkpoint snapshot; the
  *parent* persists it through its :class:`~repro.runtime.checkpoint.\
Checkpointer`, so a killed worker still salvages its last-good counts,
* ``("done", cycles_run, counts)`` — the attempt finished,
* ``("error", kind, message, cycle)`` — the attempt raised; ``kind`` is a
  :class:`~repro.backends.api.RunFailure` kind string,
* ``("spans", events)`` — telemetry only (when the parent's ``obs`` was
  enabled at fork time): trace spans the child recorded since its last
  flush, re-parented into the supervisor's trace on arrival,
* ``("counters", deltas)`` — telemetry only: counter *growth* since the
  child's previous flush.  The fork inherits the parent's accumulated
  counter values copy-on-write, so the child snapshots them at startup
  and ships deltas against that baseline — without this, increments made
  inside a worker (model-cache hits, backend cycles) die with it.

The supervisor kills the worker with ``SIGKILL`` (and reaps it) when the
wall-clock deadline passes or ``max_missed_heartbeats`` consecutive poll
windows elapse without a message — a hang that ignores every cooperative
cancellation mechanism dies anyway.  Optional POSIX ``resource`` caps
(address space, CPU seconds) are applied *inside* the child, so a runaway
attempt hits its own limit instead of the campaign's host.

Requires the ``fork`` start method (POSIX): job factories are closures and
must be inherited, not pickled.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Optional

from ..backends.api import CoverCounts, RunFailure, has_port
from .telemetry import obs

#: message tags on the child → parent pipe
BEAT = "beat"
SHARD = "shard"
DONE = "done"
ERROR = "error"
SPANS = "spans"
COUNTERS = "counters"

# Executor-level attempt number, set in the child before the job factory
# runs.  Fault injectors (FaultyBackend) use it to model transient faults
# correctly under fork: the child's copy of the backend starts from the
# parent's counter, so without this every forked attempt would look like
# attempt 1 and "fails twice, succeeds on the third try" plans never heal.
_CURRENT_ATTEMPT = 0


def current_attempt() -> int:
    """The supervising executor's attempt number, inside a process worker.

    Returns 0 when not running inside a process worker (thread mode, or
    production code importing this module directly).
    """
    return _CURRENT_ATTEMPT


def process_isolation_available() -> bool:
    """Whether this platform can run process-isolated attempts."""
    return "fork" in multiprocessing.get_all_start_methods()


def address_space_mb() -> Optional[int]:
    """Current virtual address-space size (VmSize) of this process, in MiB.

    Tests use this to set an ``RLIMIT_AS`` cap a known margin above the
    interpreter's existing footprint, so an injected memory balloon pops
    after a *deterministic* number of fixed-size chunks instead of racing
    a watchdog.  Returns None where ``/proc`` is unavailable.
    """
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmSize:"):
                    return int(line.split()[1]) >> 10  # kB -> MiB
    except (OSError, ValueError, IndexError):
        pass
    return None


def rlimit_as_enforceable() -> bool:
    """Whether ``RLIMIT_AS`` actually stops allocations on this platform.

    Some sandboxes accept ``setrlimit(RLIMIT_AS, ...)`` and then ignore
    it; a balloon test would hang against its watchdog instead of
    popping.  Probe for real: fork a child, cap it slightly above the
    current footprint, and check that a modest allocation burst dies
    with ``MemoryError``.
    """
    if not process_isolation_available():
        return False
    try:
        import resource  # noqa: F401
    except ImportError:  # pragma: no cover — non-POSIX
        return False
    base = address_space_mb()
    if base is None:
        return False

    def probe(conn) -> None:
        chunks = []
        try:
            ResourceLimits(address_space_mb=base + 64).apply()
            for _ in range(16):  # 16 * 16 MiB = 256 MiB >> the 64 MiB slack
                chunks.append(bytearray(16 << 20))
            conn.send(False)   # the cap never bit
        except MemoryError:
            chunks.clear()     # free before touching the pipe
            conn.send(True)
        except Exception:
            conn.send(False)
        finally:
            conn.close()

    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    child = ctx.Process(target=probe, args=(child_conn,), daemon=True)
    child.start()
    child_conn.close()
    enforced = False
    try:
        if parent_conn.poll(10):
            enforced = bool(parent_conn.recv())
    except (EOFError, OSError):
        enforced = False
    finally:
        _kill_and_reap(child)
        parent_conn.close()
    return enforced


def counts_digest(counts: CoverCounts) -> int:
    """CRC-32 over the sorted count map — the heartbeat progress digest."""
    crc = 0
    for key in sorted(counts):
        crc = zlib.crc32(f"{key}={counts[key]};".encode(), crc)
    return crc


@dataclass
class ResourceLimits:
    """POSIX rlimit caps applied inside a worker process.

    ``address_space_mb`` caps ``RLIMIT_AS`` (a memory balloon gets a
    ``MemoryError`` instead of taking down the host); ``cpu_seconds`` caps
    ``RLIMIT_CPU`` (a spinning worker is killed by ``SIGXCPU``).  On
    platforms without the ``resource`` module the caps are silently
    unavailable — supervision still works, only the in-child limits drop.
    """

    address_space_mb: Optional[int] = None
    cpu_seconds: Optional[int] = None

    def __post_init__(self) -> None:
        if self.address_space_mb is not None and self.address_space_mb <= 0:
            raise ValueError("address_space_mb must be positive")
        if self.cpu_seconds is not None and self.cpu_seconds <= 0:
            raise ValueError("cpu_seconds must be positive")

    def apply(self) -> None:
        try:
            import resource
        except ImportError:  # pragma: no cover — non-POSIX
            return
        if self.address_space_mb is not None:
            cap = self.address_space_mb << 20
            resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
        if self.cpu_seconds is not None:
            resource.setrlimit(
                resource.RLIMIT_CPU, (self.cpu_seconds, self.cpu_seconds)
            )


@dataclass
class SupervisionPolicy:
    """When the supervisor gives up on a worker.

    ``deadline`` is the per-attempt wall-clock budget in seconds (None
    disables it).  ``heartbeat_timeout`` is one poll window; a worker that
    stays silent for ``max_missed_heartbeats`` consecutive windows is
    presumed wedged and killed even without a deadline.
    ``heartbeat_cycles`` is the child's beat cadence in simulation cycles.
    """

    deadline: Optional[float] = None
    heartbeat_timeout: float = 1.0
    max_missed_heartbeats: int = 5
    heartbeat_cycles: int = 64
    limits: Optional[ResourceLimits] = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None to disable)")
        if self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        if self.max_missed_heartbeats < 1:
            raise ValueError("max_missed_heartbeats must be >= 1")
        if self.heartbeat_cycles < 1:
            raise ValueError("heartbeat_cycles must be >= 1")


@dataclass
class ProcessAttemptResult:
    """Everything the supervisor learned from one process attempt.

    ``status`` is ``ok`` (clean finish), ``error`` (the child raised and
    reported it), ``killed`` (supervisor SIGKILLed a wedged/overdue child)
    or ``died`` (the child vanished without reporting — segfault, OOM
    kill, ``SIGXCPU``).  ``last_beat_cycle``/``last_digest`` record the
    final progress report, which is all the post-mortem a killed worker
    leaves behind.
    """

    status: str
    counts: Optional[CoverCounts] = None
    cycles_run: int = 0
    failure_kind: str = "error"
    message: str = ""
    last_beat_cycle: int = 0
    last_digest: int = 0
    exit_code: Optional[int] = None


def _flush_telemetry(conn, baseline: dict) -> None:
    """Send the child's spans and counter growth up the pipe (telemetry on).

    ``baseline`` is the counter snapshot the last flush (or the fork)
    left behind; it is advanced in place after each send so every delta
    is shipped exactly once.
    """
    if not obs.enabled:
        return
    events = obs.tracer.drain()
    if events:
        conn.send((SPANS, events))
    deltas = obs.counter_deltas(baseline)
    if deltas:
        conn.send((COUNTERS, deltas))
        baseline.update(obs.counter_state())


def _child_main(conn, job, attempt: int, policy: SupervisionPolicy,
                checkpoint_every: int) -> None:
    """Worker body: apply limits, drive the simulation, stream progress."""
    global _CURRENT_ATTEMPT
    _CURRENT_ATTEMPT = attempt
    cycles_done = 0
    if obs.enabled:
        # Drop span events inherited across the fork (they belong to the
        # parent's trace); keep the epoch so child timestamps stay on the
        # parent's timeline.
        obs.tracer.clear()
    # Inherited counter values belong to the parent too — only growth past
    # this snapshot is the child's to report.
    baseline = obs.counter_state() if obs.enabled else {}
    attempt_start = obs.tracer.clock() if obs.enabled else 0.0
    batch_start = attempt_start

    def mark_batch(cycles: int) -> float:
        nonlocal batch_start
        if obs.enabled:
            now = obs.tracer.clock()
            obs.tracer.record(
                "step-batch", "worker", batch_start, now,
                backend=job.backend_name, cycles=cycles,
            )
            batch_start = now
        return batch_start

    try:
        if policy.limits is not None:
            policy.limits.apply()
        conn.send((BEAT, 0, 0))  # alive before the (possibly slow) compile
        with obs.span(
            "compile", cat="worker", backend=job.backend_name, attempt=attempt
        ):
            sim = job.make_sim()
        conn.send((BEAT, 0, 0))
        _flush_telemetry(conn, baseline)
        if job.reset_cycles and has_port(sim, "reset"):
            sim.poke("reset", 1)
            sim.step(job.reset_cycles)
            sim.poke("reset", 0)
        batch_start = obs.tracer.clock() if obs.enabled else 0.0
        last_batch_cycle = 0
        cycle = 0
        while cycle < job.cycles:
            if job.stimulus is not None:
                # per-cycle stimulus pins the driver to single stepping
                job.stimulus(sim, cycle)
                block = 1
            else:
                # batch up to the next heartbeat/checkpoint boundary so
                # beat and shard cadence stay exactly as single-stepped
                block = job.cycles - cycle
                block = min(
                    block,
                    policy.heartbeat_cycles - cycle % policy.heartbeat_cycles,
                )
                if checkpoint_every:
                    block = min(
                        block, checkpoint_every - cycle % checkpoint_every
                    )
            result = sim.step(block)
            cycle += result.cycles
            cycles_done = cycle
            if result.cycles and cycles_done % policy.heartbeat_cycles == 0:
                mark_batch(cycles_done - last_batch_cycle)
                last_batch_cycle = cycles_done
                conn.send((BEAT, cycles_done, counts_digest(sim.cover_counts())))
            if (
                result.cycles
                and checkpoint_every
                and cycles_done % checkpoint_every == 0
            ):
                with obs.span(
                    "shard-stream", cat="worker",
                    backend=job.backend_name, cycle=cycles_done,
                ):
                    conn.send((SHARD, cycles_done, dict(sim.cover_counts())))
                _flush_telemetry(conn, baseline)
            if result.stopped:
                break
            if result.cycles == 0:
                break  # defensive: a sim refusing to advance must not spin
        if obs.enabled:
            if cycles_done > last_batch_cycle:
                mark_batch(cycles_done - last_batch_cycle)
            obs.tracer.record(
                "child-attempt", "worker", attempt_start, obs.tracer.clock(),
                backend=job.backend_name, attempt=attempt, cycles=cycles_done,
            )
        _flush_telemetry(conn, baseline)
        conn.send((DONE, cycles_done, dict(sim.cover_counts())))
    except MemoryError:
        # The sim's allocations still pin address space; a well-behaved
        # fault frees before raising (see FaultySimulation), and this small
        # tuple usually fits.  If it doesn't, the parent sees a hard death.
        conn.send((ERROR, "crash", "worker exceeded its memory cap",
                   cycles_done))
    except BaseException as error:
        if obs.enabled:
            obs.tracer.record(
                "child-attempt", "worker", attempt_start, obs.tracer.clock(),
                backend=job.backend_name, attempt=attempt, cycles=cycles_done,
                error=type(error).__name__,
            )
            try:
                _flush_telemetry(conn, baseline)
            except OSError:  # pragma: no cover — broken pipe on teardown
                pass
        conn.send((ERROR, RunFailure.kind_of(error), str(error), cycles_done))
    finally:
        conn.close()


def _kill_and_reap(process) -> None:
    """SIGKILL the worker and wait for the corpse — no zombie, no leak."""
    if process.is_alive() and process.pid is not None:
        try:
            os.kill(process.pid, signal.SIGKILL)
        except ProcessLookupError:  # already gone
            pass
    process.join()


def run_process_attempt(
    job,
    attempt: int,
    policy: SupervisionPolicy,
    checkpoint_every: int = 0,
    on_shard: Optional[Callable[[int, CoverCounts], None]] = None,
) -> ProcessAttemptResult:
    """Run one attempt of ``job`` in a supervised forked process.

    ``on_shard(cycle, counts)`` is invoked in the *parent* for every
    checkpoint snapshot the child streams up — the caller persists them,
    so a later SIGKILL still salvages the last snapshot.
    """
    if not process_isolation_available():
        raise RuntimeError(
            "process isolation requires the 'fork' start method (POSIX); "
            "use thread isolation on this platform"
        )
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    worker = ctx.Process(
        target=_child_main,
        args=(child_conn, job, attempt, policy, checkpoint_every),
        daemon=True,
    )
    worker.start()
    child_conn.close()
    result = ProcessAttemptResult(status="died")
    deadline = (
        time.monotonic() + policy.deadline if policy.deadline is not None else None
    )
    missed = 0
    backend = getattr(job, "backend_name", "?")
    last_message_at = time.monotonic()
    try:
        while True:
            window = policy.heartbeat_timeout
            if deadline is not None:
                window = min(window, max(0.0, deadline - time.monotonic()))
            if parent_conn.poll(window):
                try:
                    message = parent_conn.recv()
                except EOFError:
                    # Child closed the pipe without a verdict: hard death.
                    worker.join()
                    result.status = "died"
                    result.failure_kind = "crash"
                    result.message = (
                        f"worker died without reporting "
                        f"(exit code {worker.exitcode})"
                    )
                    break
                if obs.enabled:
                    now = time.monotonic()
                    obs.observe(
                        "repro_heartbeat_lag_seconds",
                        now - last_message_at,
                        backend=backend,
                    )
                    last_message_at = now
                missed = 0
                tag = message[0]
                if tag == BEAT:
                    _, result.last_beat_cycle, result.last_digest = message
                elif tag == SPANS:
                    obs.ingest_child_spans(message[1], child_pid=worker.pid)
                elif tag == COUNTERS:
                    obs.ingest_child_counters(message[1])
                elif tag == SHARD:
                    _, cycle, counts = message
                    result.last_beat_cycle = cycle
                    if on_shard is not None:
                        on_shard(cycle, counts)
                elif tag == DONE:
                    _, result.cycles_run, result.counts = message
                    result.status = "ok"
                    break
                elif tag == ERROR:
                    _, result.failure_kind, result.message, result.cycles_run = (
                        message
                    )
                    result.status = "error"
                    break
            else:
                if deadline is not None and time.monotonic() >= deadline:
                    _kill_and_reap(worker)
                    if obs.enabled:
                        obs.inc(
                            "repro_worker_kills_total",
                            backend=backend, reason="deadline",
                        )
                    result.status = "killed"
                    result.failure_kind = "timeout"
                    result.message = (
                        f"attempt exceeded {policy.deadline}s wall clock; "
                        f"worker killed (last heartbeat: cycle "
                        f"{result.last_beat_cycle})"
                    )
                    break
                missed += 1
                if missed >= policy.max_missed_heartbeats:
                    _kill_and_reap(worker)
                    if obs.enabled:
                        obs.inc(
                            "repro_worker_kills_total",
                            backend=backend, reason="silence",
                        )
                    result.status = "killed"
                    result.failure_kind = "timeout"
                    result.message = (
                        f"no heartbeat for {missed} consecutive "
                        f"{policy.heartbeat_timeout}s windows; worker killed "
                        f"(last heartbeat: cycle {result.last_beat_cycle})"
                    )
                    break
    finally:
        # Whatever ended the loop, never leave a live child or a zombie.
        _kill_and_reap(worker)
        parent_conn.close()
    result.exit_code = worker.exitcode
    return result
