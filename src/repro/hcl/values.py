"""Hardware values: the expression layer of the HCL.

A :class:`Value` wraps an IR expression and overloads Python operators the
way Chisel overloads Scala operators.  Arithmetic follows Chisel's
width-preserving convention (``a + b`` truncates to ``max(w_a, w_b)``); the
FIRRTL-style growing variants are available as methods (``addw``, ``subw``,
``mulw``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..ir import nodes as n
from ..ir.types import SIntType, Type, UIntType, bit_width, is_signed

IntOrValue = Union[int, "Value"]


class HclError(Exception):
    """Raised on misuse of the hardware construction API."""


class Value:
    """An immutable hardware expression."""

    __slots__ = ("expr",)

    def __init__(self, expr: n.Expr) -> None:
        self.expr = expr

    # -- introspection -------------------------------------------------------

    @property
    def type(self) -> Type:
        return self.expr.tpe

    @property
    def width(self) -> int:
        return bit_width(self.type)

    @property
    def signed(self) -> bool:
        return is_signed(self.type)

    def __repr__(self) -> str:
        return f"Value({self.expr})"

    def __bool__(self) -> bool:
        raise HclError(
            "hardware values cannot be used as Python booleans; "
            "use m.when(...) for conditional hardware"
        )

    # -- coercion ------------------------------------------------------------

    def _lift(self, other: IntOrValue, width: Optional[int] = None) -> "Value":
        if isinstance(other, Value):
            return other
        if not isinstance(other, int):
            raise HclError(f"cannot use {other!r} as a hardware value")
        if width is not None:
            target = width
        else:
            needed = other.bit_length() + (1 if (other < 0 or self.signed) else 0)
            target = max(self.width, needed, 1)
        return literal(other, target, signed=self.signed or other < 0)

    def _trunc(self, expr: n.Expr, width: int) -> n.Expr:
        """Truncate/reinterpret ``expr`` to ``width`` preserving signedness."""
        if bit_width(expr.tpe) == width and is_signed(expr.tpe) == self.signed:
            return expr
        sliced = n.prim("bits", expr, consts=[width - 1, 0])
        if self.signed:
            return n.prim("asSInt", sliced)
        return sliced

    def _trunc_implicit(self, expr: n.Expr, width: int) -> n.Expr:
        """Connect-site truncation the user never wrote.

        Emits ``tail`` rather than ``bits`` so the ``width-trunc`` lint can
        tell frontend-inserted narrowing apart from an explicit user slice
        (both would otherwise read ``bits(x, w-1, 0)`` in the IR).
        """
        dropped = bit_width(expr.tpe) - width
        if dropped <= 0:
            return self._trunc(expr, width)
        sliced = n.prim("tail", expr, consts=[dropped])
        if self.signed:
            return n.prim("asSInt", sliced)
        return sliced

    # -- arithmetic (width preserving, Chisel style) --------------------------

    def _arith(self, op: str, other: IntOrValue) -> "Value":
        rhs = self._lift(other)
        width = max(self.width, rhs.width)
        return Value(self._trunc(n.prim(op, self.expr, rhs.expr), width))

    def __add__(self, other: IntOrValue) -> "Value":
        return self._arith("add", other)

    def __radd__(self, other: int) -> "Value":
        return self._lift(other).__add__(self)

    def __sub__(self, other: IntOrValue) -> "Value":
        return self._arith("sub", other)

    def __rsub__(self, other: int) -> "Value":
        return self._lift(other).__sub__(self)

    def __mul__(self, other: IntOrValue) -> "Value":
        return self._arith("mul", other)

    def __rmul__(self, other: int) -> "Value":
        return self._lift(other).__mul__(self)

    def __floordiv__(self, other: IntOrValue) -> "Value":
        rhs = self._lift(other)
        return Value(self._trunc(n.prim("div", self.expr, rhs.expr), self.width))

    def __mod__(self, other: IntOrValue) -> "Value":
        rhs = self._lift(other)
        result = n.prim("rem", self.expr, rhs.expr)
        return Value(result)

    # -- growing variants ------------------------------------------------------

    def addw(self, other: IntOrValue) -> "Value":
        """Width-growing add (FIRRTL ``add``: result is one bit wider)."""
        return Value(n.prim("add", self.expr, self._lift(other).expr))

    def subw(self, other: IntOrValue) -> "Value":
        """Width-growing subtract."""
        return Value(n.prim("sub", self.expr, self._lift(other).expr))

    def mulw(self, other: IntOrValue) -> "Value":
        """Full-width multiply (w1 + w2 result bits)."""
        return Value(n.prim("mul", self.expr, self._lift(other).expr))

    # -- comparisons -----------------------------------------------------------

    def _cmp(self, op: str, other: IntOrValue) -> "Value":
        rhs = self._lift(other)
        return Value(n.prim(op, self.expr, rhs.expr))

    def __eq__(self, other: object) -> "Value":  # type: ignore[override]
        return self._cmp("eq", other)  # type: ignore[arg-type]

    def __ne__(self, other: object) -> "Value":  # type: ignore[override]
        return self._cmp("neq", other)  # type: ignore[arg-type]

    __hash__ = None  # type: ignore[assignment]

    def __lt__(self, other: IntOrValue) -> "Value":
        return self._cmp("lt", other)

    def __le__(self, other: IntOrValue) -> "Value":
        return self._cmp("leq", other)

    def __gt__(self, other: IntOrValue) -> "Value":
        return self._cmp("gt", other)

    def __ge__(self, other: IntOrValue) -> "Value":
        return self._cmp("geq", other)

    # -- bitwise ---------------------------------------------------------------

    def __and__(self, other: IntOrValue) -> "Value":
        return Value(n.prim("and", self.expr, self._lift(other).expr))

    def __rand__(self, other: int) -> "Value":
        return self.__and__(other)

    def __or__(self, other: IntOrValue) -> "Value":
        return Value(n.prim("or", self.expr, self._lift(other).expr))

    def __ror__(self, other: int) -> "Value":
        return self.__or__(other)

    def __xor__(self, other: IntOrValue) -> "Value":
        return Value(n.prim("xor", self.expr, self._lift(other).expr))

    def __rxor__(self, other: int) -> "Value":
        return self.__xor__(other)

    def __invert__(self) -> "Value":
        return Value(n.prim("not", self.expr))

    # -- shifts ----------------------------------------------------------------

    def __lshift__(self, amount: IntOrValue) -> "Value":
        if isinstance(amount, int):
            shifted = n.prim("shl", self.expr, consts=[amount])
        else:
            shifted = n.prim("dshl", self.expr, amount.expr)
        return Value(self._trunc(shifted, self.width))

    def lshiftw(self, amount: int) -> "Value":
        """Width-growing static left shift."""
        return Value(n.prim("shl", self.expr, consts=[amount]))

    def __rshift__(self, amount: IntOrValue) -> "Value":
        if isinstance(amount, int):
            return Value(n.prim("shr", self.expr, consts=[amount])) if amount else self
        return Value(n.prim("dshr", self.expr, amount.expr))

    # -- bit selection -----------------------------------------------------------

    def __getitem__(self, index: Union[int, slice, "Value"]) -> "Value":
        if isinstance(index, Value):
            shifted = n.prim("dshr", self.expr, index.expr)
            return Value(n.prim("bits", shifted, consts=[0, 0]))
        if isinstance(index, slice):
            if index.step is not None:
                raise HclError("bit slices do not support a step")
            hi, lo = index.start, index.stop
            if hi is None or lo is None:
                raise HclError("bit slices need explicit bounds: v[hi:lo]")
            return Value(n.prim("bits", self.expr, consts=[hi, lo]))
        if index < 0:
            index += self.width
        return Value(n.prim("bits", self.expr, consts=[index, index]))

    def bits(self, hi: int, lo: int) -> "Value":
        """Extract the inclusive bit range ``[hi:lo]``."""
        return Value(n.prim("bits", self.expr, consts=[hi, lo]))

    # -- reductions and misc -------------------------------------------------------

    def and_reduce(self) -> "Value":
        return Value(n.prim("andr", self.expr))

    def or_reduce(self) -> "Value":
        return Value(n.prim("orr", self.expr))

    def xor_reduce(self) -> "Value":
        return Value(n.prim("xorr", self.expr))

    def as_uint(self) -> "Value":
        return Value(n.prim("asUInt", self.expr))

    def as_sint(self) -> "Value":
        return Value(n.prim("asSInt", self.expr))

    def pad(self, width: int) -> "Value":
        """Zero/sign-extend to at least ``width`` bits."""
        return Value(n.prim("pad", self.expr, consts=[width]))

    def zext(self, width: int) -> "Value":
        """Zero-extend to exactly ``width`` bits (must not shrink)."""
        if width < self.width:
            raise HclError(f"zext to {width} would shrink a {self.width}-bit value")
        return Value(n.prim("pad", n.prim("asUInt", self.expr), consts=[width]))

    def sext(self, width: int) -> "Value":
        """Sign-extend to exactly ``width`` bits."""
        if width < self.width:
            raise HclError(f"sext to {width} would shrink a {self.width}-bit value")
        return Value(n.prim("asUInt", n.prim("pad", n.prim("asSInt", self.expr), consts=[width])))


def literal(value: int, width: int, signed: bool = False) -> Value:
    """Build a literal hardware value."""
    if signed:
        return Value(n.SIntLiteral(value, width))
    return Value(n.UIntLiteral(value, width))


def u(value: int, width: Optional[int] = None) -> Value:
    """Unsigned literal; width defaults to the minimal width."""
    if width is None:
        width = max(value.bit_length(), 1)
    return Value(n.UIntLiteral(value, width))


def s(value: int, width: Optional[int] = None) -> Value:
    """Signed literal; width defaults to the minimal width."""
    if width is None:
        width = max(value.bit_length() + 1, 1)
    return Value(n.SIntLiteral(value, width))


def mux(cond: Value, tval: IntOrValue, fval: IntOrValue) -> Value:
    """2:1 multiplexer."""
    if isinstance(tval, int) and isinstance(fval, int):
        width = max(tval.bit_length(), fval.bit_length(), 1)
        tval, fval = u(tval, width), u(fval, width)
    elif isinstance(tval, int):
        assert isinstance(fval, Value)
        tval = fval._lift(tval, fval.width)
    elif isinstance(fval, int):
        fval = tval._lift(fval, tval.width)
    assert isinstance(tval, Value) and isinstance(fval, Value)
    width = max(tval.width, fval.width)
    t_expr = tval.pad(width).expr if tval.width < width else tval.expr
    f_expr = fval.pad(width).expr if fval.width < width else fval.expr
    return Value(n.Mux.make(cond.expr, t_expr, f_expr))


def cat(*parts: Value) -> Value:
    """Concatenate values, first argument becomes the most significant bits."""
    if not parts:
        raise HclError("cat needs at least one operand")
    acc = parts[0].expr
    for part in parts[1:]:
        acc = n.prim("cat", acc, part.expr)
    return Value(acc)


def fill(bit: Value, count: int) -> Value:
    """Replicate a 1-bit value ``count`` times."""
    if bit.width != 1:
        raise HclError("fill replicates a single bit")
    return cat(*([bit] * count))


def reduce_or(values: Iterable[Value]) -> Value:
    """OR together a sequence of 1-bit values (0 literal when empty)."""
    acc: Optional[Value] = None
    for v in values:
        acc = v if acc is None else (acc | v)
    return acc if acc is not None else u(0, 1)


def reduce_and(values: Iterable[Value]) -> Value:
    """AND together a sequence of 1-bit values (1 literal when empty)."""
    acc: Optional[Value] = None
    for v in values:
        acc = v if acc is None else (acc & v)
    return acc if acc is not None else u(1, 1)
