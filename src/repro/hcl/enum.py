"""ChiselEnum reproduction: named state encodings with annotations.

Registers declared with an enum type carry an
:class:`repro.ir.annotations.EnumDefAnnotation`, which is what the FSM
coverage pass (§4.3 of the paper) keys on.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..ir import nodes as n
from .values import HclError, Value


class EnumConst(Value):
    """A literal value belonging to a :class:`ChiselEnum`."""

    __slots__ = ("enum", "name")

    def __init__(self, enum: "ChiselEnum", name: str, value: int) -> None:
        super().__init__(n.UIntLiteral(value, enum.width))
        self.enum = enum
        self.name = name

    def __repr__(self) -> str:
        return f"{self.enum.name}.{self.name}"


class ChiselEnum:
    """A set of named states, encoded as consecutive unsigned integers.

    >>> S = ChiselEnum("S", ["idle", "busy", "done"])
    >>> S.idle.width
    2
    """

    def __init__(self, name: str, states: Iterable[str] | str) -> None:
        if isinstance(states, str):
            states = states.split()
        names: Sequence[str] = list(states)
        if not names:
            raise HclError("an enum needs at least one state")
        if len(set(names)) != len(names):
            raise HclError(f"duplicate state names in enum {name}")
        self.name = name
        self.width = max((len(names) - 1).bit_length(), 1)
        self.states: dict[str, int] = {s: i for i, s in enumerate(names)}
        self._consts: dict[str, EnumConst] = {
            s: EnumConst(self, s, i) for s, i in self.states.items()
        }

    def __getattr__(self, item: str) -> EnumConst:
        try:
            return self.__dict__["_consts"][item]
        except KeyError:
            raise AttributeError(f"enum {self.name} has no state {item!r}") from None

    def __getitem__(self, item: str) -> EnumConst:
        return self._consts[item]

    def __iter__(self):
        return iter(self._consts.values())

    def __len__(self) -> int:
        return len(self.states)

    def const(self, name: str) -> EnumConst:
        return self._consts[name]

    def items(self) -> tuple[tuple[str, int], ...]:
        return tuple(self.states.items())
