"""A Chisel-like hardware construction language embedded in Python.

Circuits are built by subclassing :class:`Module` and using the
:class:`ModuleBuilder` API inside ``build``::

    class Counter(Module):
        def __init__(self, width=8):
            super().__init__()
            self.width = width

        def build(self, m):
            en = m.input("en")
            out = m.output("count", self.width)
            cnt = m.reg("cnt", self.width, init=0)
            with m.when(en):
                cnt <<= cnt + 1
            out <<= cnt

    circuit = elaborate(Counter())
"""

from .enum import ChiselEnum, EnumConst
from .module import (
    Connectable,
    Decoupled,
    Elaborator,
    Instance,
    Memory,
    Module,
    ModuleBuilder,
    elaborate,
)
from .values import (
    HclError,
    Value,
    cat,
    fill,
    literal,
    mux,
    reduce_and,
    reduce_or,
    s,
    u,
)

__all__ = [
    "ChiselEnum",
    "Connectable",
    "Decoupled",
    "Elaborator",
    "EnumConst",
    "HclError",
    "Instance",
    "Memory",
    "Module",
    "ModuleBuilder",
    "Value",
    "cat",
    "elaborate",
    "fill",
    "literal",
    "mux",
    "reduce_and",
    "reduce_or",
    "s",
    "u",
]
