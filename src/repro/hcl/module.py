"""Module construction: the builder API and elaboration to IR.

A design is a subclass of :class:`Module` implementing ``build(self, m)``
against a :class:`ModuleBuilder`.  Elaboration recursively builds child
modules (depth-first, like Chisel) and produces a :class:`repro.ir.Circuit`.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Optional, Union

from ..ir import annotations as anno
from ..ir import nodes as n
from ..ir.namespace import Namespace, sanitize
from ..ir.types import CLOCK, SIntType, Type, UIntType, bit_width
from .enum import ChiselEnum, EnumConst
from .values import HclError, IntOrValue, Value, literal, mux, u

_HCL_DIR = str(Path(__file__).parent)

# Telemetry is imported lazily to keep the HCL layer import-light and to
# avoid any chance of a cycle through the runtime package.
_obs = None


def _get_obs():
    global _obs
    if _obs is None:
        from ..runtime.telemetry import obs as _o
        _obs = _o
    return _obs


def _caller_info() -> n.SourceInfo:
    """Source location of the first stack frame outside the HCL library."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.startswith(_HCL_DIR):
            return n.SourceInfo(Path(filename).name, frame.f_lineno)
        frame = frame.f_back
    return n.NO_INFO


class Connectable(Value):
    """A value that may appear on the left of ``<<=`` (wire/reg/output/input-port)."""

    __slots__ = ("_builder", "_kind")

    def __init__(self, expr: n.Expr, builder: "ModuleBuilder", kind: str) -> None:
        super().__init__(expr)
        self._builder = builder
        self._kind = kind

    def __ilshift__(self, rhs: IntOrValue) -> "Connectable":
        self._builder._connect(self, rhs, _caller_info())
        return self

    def assign(self, rhs: IntOrValue) -> None:
        """Explicit form of ``<<=`` (useful where augmented assign is awkward)."""
        self._builder._connect(self, rhs, _caller_info())


class Memory:
    """A word-addressed memory with combinational read, synchronous write."""

    def __init__(self, builder: "ModuleBuilder", name: str, data_type: Type, depth: int) -> None:
        self._builder = builder
        self.name = name
        self.data_type = data_type
        self.depth = depth

    @property
    def addr_width(self) -> int:
        return max((self.depth - 1).bit_length(), 1)

    def __getitem__(self, addr: IntOrValue) -> Value:
        addr_v = self._builder._as_value(addr, self.addr_width)
        return Value(n.MemRead(self.name, addr_v.expr, self.data_type))

    def read(self, addr: IntOrValue) -> Value:
        return self[addr]

    def __setitem__(self, addr: IntOrValue, data: IntOrValue) -> None:
        self.write(addr, data)

    def write(self, addr: IntOrValue, data: IntOrValue, en: Optional[Value] = None) -> None:
        self._builder._mem_write(self, addr, data, en, _caller_info())


class Decoupled:
    """A flattened DecoupledIO handshake bundle (§4.4)."""

    def __init__(self, bits: Value, valid: Value, ready: Value, prefix: str) -> None:
        self.bits = bits
        self.valid = valid
        self.ready = ready
        self.prefix = prefix

    @property
    def fire(self) -> Value:
        """True in cycles where a transfer happens (ready && valid)."""
        return self.valid & self.ready


class Instance:
    """Handle to an instantiated child module: ports as attributes."""

    def __init__(self, builder: "ModuleBuilder", name: str, ir_module: n.Module) -> None:
        object.__setattr__(self, "_builder", builder)
        object.__setattr__(self, "_name", name)
        object.__setattr__(self, "_module", ir_module)

    @property
    def name(self) -> str:
        return self._name

    def io(self, port: str) -> Union[Value, Connectable]:
        module: n.Module = self._module
        p = module.port(port)
        expr = n.InstPort(self._name, port, p.type)
        if p.direction == n.INPUT:
            return Connectable(expr, self._builder, "instport")
        return Value(expr)

    def __getattr__(self, port: str) -> Union[Value, Connectable]:
        try:
            return self.io(port)
        except KeyError:
            raise AttributeError(f"instance {self._name} has no port {port!r}") from None

    def decoupled(self, prefix: str) -> Decoupled:
        """View three child ports ``prefix_bits/_valid/_ready`` as a bundle."""
        return Decoupled(
            self.io(f"{prefix}_bits"),
            self.io(f"{prefix}_valid"),
            self.io(f"{prefix}_ready"),
            prefix,
        )


class _WhenContext:
    def __init__(self, builder: "ModuleBuilder", when: n.When, block: list) -> None:
        self._builder = builder
        self._when = when
        self._block = block

    def __enter__(self) -> "_WhenContext":
        self._builder._push_block(self._block)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._builder._pop_block()
        self._builder._pending_when = self._when


class _SwitchContext:
    def __init__(self, builder: "ModuleBuilder", subject: Value) -> None:
        self._builder = builder
        self._subject = subject
        self._first = True

    def __enter__(self) -> "_SwitchContext":
        self._builder._switch_stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._builder._switch_stack.pop()


class ModuleBuilder:
    """Accumulates IR statements for one module under construction."""

    def __init__(self, name: str, elaborator: "Elaborator", with_reset: bool = True) -> None:
        self.name = name
        self._elab = elaborator
        self._ns = Namespace()
        self._module = n.Module(name)
        self._blocks: list[list[n.Stmt]] = [self._module.body]
        self._pending_when: Optional[n.When] = None
        self._switch_stack: list[_SwitchContext] = []
        self._port_dirs: dict[str, str] = {}
        self.clock = self._add_port("clock", n.INPUT, CLOCK)
        self.reset: Value
        if with_reset:
            self.reset = self._add_port("reset", n.INPUT, UIntType(1))
        else:
            self.reset = literal(0, 1)

    # -- internal plumbing ----------------------------------------------------

    def _add_port(self, name: str, direction: str, tpe: Type) -> Connectable:
        self._ns.reserve(name)
        self._module.ports.append(n.Port(name, direction, tpe, _caller_info()))
        self._port_dirs[name] = direction
        kind = "input" if direction == n.INPUT else "output"
        return Connectable(n.Ref(name, tpe), self, kind)

    def _emit(self, stmt: n.Stmt) -> None:
        self._pending_when = None
        self._blocks[-1].append(stmt)

    def _push_block(self, block: list) -> None:
        self._blocks.append(block)

    def _pop_block(self) -> None:
        self._blocks.pop()

    def _as_value(self, v: IntOrValue, width: int, signed: bool = False) -> Value:
        if isinstance(v, Value):
            return v
        if isinstance(v, int):
            return literal(v, width, signed=signed or v < 0)
        raise HclError(f"expected a hardware value or int, got {v!r}")

    def _connect(self, target: Connectable, rhs: IntOrValue, info: n.SourceInfo) -> None:
        if target._kind == "input":
            raise HclError(f"cannot drive module input {target.expr}")
        if target._builder is not self:
            raise HclError("cannot connect a signal that belongs to another module")
        rhs_v = self._as_value(rhs, target.width, target.signed)
        if rhs_v.width < target.width:
            rhs_v = rhs_v.pad(target.width)
        elif rhs_v.width > target.width:
            rhs_v = Value(target._trunc_implicit(rhs_v.expr, target.width))
        if rhs_v.signed != target.signed:
            rhs_v = rhs_v.as_sint() if target.signed else rhs_v.as_uint()
        assert isinstance(target.expr, (n.Ref, n.InstPort))
        self._emit(n.Connect(target.expr, rhs_v.expr, info))

    def _mem_write(
        self,
        memory: Memory,
        addr: IntOrValue,
        data: IntOrValue,
        en: Optional[Value],
        info: n.SourceInfo,
    ) -> None:
        addr_v = self._as_value(addr, memory.addr_width)
        data_v = self._as_value(data, bit_width(memory.data_type))
        if data_v.width < bit_width(memory.data_type):
            data_v = data_v.pad(bit_width(memory.data_type))
        en_expr = n.TRUE if en is None else en.expr
        self._emit(n.MemWrite(memory.name, addr_v.expr, data_v.expr, en_expr, self.clock.expr, info))

    # -- declarations -----------------------------------------------------------

    def _make_type(self, width: int, signed: bool) -> Type:
        return SIntType(width) if signed else UIntType(width)

    def input(self, name: str, width: int = 1, signed: bool = False) -> Value:
        """Declare an input port."""
        return self._add_port(sanitize(name), n.INPUT, self._make_type(width, signed))

    def output(self, name: str, width: int = 1, signed: bool = False) -> Connectable:
        """Declare an output port."""
        return self._add_port(sanitize(name), n.OUTPUT, self._make_type(width, signed))

    def wire(self, name: str, width: int = 1, signed: bool = False) -> Connectable:
        """Declare a wire.  Must be fully assigned on every path."""
        unique = self._ns.fresh(name)
        self._emit(n.DefWire(unique, self._make_type(width, signed), _caller_info()))
        return Connectable(n.Ref(unique, self._make_type(width, signed)), self, "wire")

    def reg(
        self,
        name: str,
        width: Optional[int] = None,
        init: Optional[IntOrValue] = None,
        enum: Optional[ChiselEnum] = None,
        signed: bool = False,
    ) -> Connectable:
        """Declare a register.

        With ``init`` the register synchronously resets to that value.  With
        ``enum`` the register holds enum states and emits the annotation the
        FSM coverage pass consumes; ``init`` then defaults to the first state.
        """
        if enum is not None:
            width = enum.width
            if init is None:
                init = next(iter(enum))
            if isinstance(init, EnumConst) and init.enum is not enum:
                raise HclError("register init is from a different enum")
        if width is None:
            raise HclError("register needs an explicit width (or an enum)")
        tpe = self._make_type(width, signed)
        unique = self._ns.fresh(name)
        reset = init_expr = None
        if init is not None:
            reset = self.reset.expr
            init_v = self._as_value(init, width, signed)
            if init_v.width < width:
                init_v = init_v.pad(width)
            init_expr = init_v.expr
        self._emit(n.DefRegister(unique, tpe, self.clock.expr, reset, init_expr, _caller_info()))
        if enum is not None:
            self._elab.annotations.append(
                anno.EnumDefAnnotation(self.name, unique, enum.name, enum.items())
            )
        return Connectable(n.Ref(unique, tpe), self, "reg")

    def node(self, name: str, value: IntOrValue) -> Value:
        """Name an intermediate expression (becomes an IR node)."""
        v = self._as_value(value, 1)
        unique = self._ns.fresh(name)
        self._emit(n.DefNode(unique, v.expr, _caller_info()))
        return Value(n.Ref(unique, v.type))

    def mem(self, name: str, width: int, depth: int) -> Memory:
        """Declare a memory with combinational read and synchronous write."""
        unique = self._ns.fresh(name)
        self._emit(n.DefMemory(unique, UIntType(width), depth, _caller_info()))
        return Memory(self, unique, UIntType(width), depth)

    def instance(self, name: str, child: "Module") -> Instance:
        """Instantiate a child module; its clock/reset connect automatically."""
        ir_module = self._elab.build(child)
        unique = self._ns.fresh(name)
        self._emit(n.DefInstance(unique, ir_module.name, _caller_info()))
        handle = Instance(self, unique, ir_module)
        port_names = {p.name for p in ir_module.ports}
        if "clock" in port_names:
            self._emit(n.Connect(n.InstPort(unique, "clock", CLOCK), self.clock.expr))
        if "reset" in port_names:
            self._emit(n.Connect(n.InstPort(unique, "reset", UIntType(1)), self.reset.expr))
        return handle

    # -- decoupled bundles ---------------------------------------------------------

    def decoupled_input(self, prefix: str, width: int) -> Decoupled:
        """Consumer side: bits/valid are inputs, ready is our output."""
        bits = self.input(f"{prefix}_bits", width)
        valid = self.input(f"{prefix}_valid", 1)
        ready = self.output(f"{prefix}_ready", 1)
        self._elab.annotations.append(
            anno.DecoupledAnnotation(self.name, prefix, f"{prefix}_ready", f"{prefix}_valid", True)
        )
        return Decoupled(bits, valid, ready, prefix)

    def decoupled_output(self, prefix: str, width: int) -> Decoupled:
        """Producer side: bits/valid are outputs, ready is an input."""
        bits = self.output(f"{prefix}_bits", width)
        valid = self.output(f"{prefix}_valid", 1)
        ready = self.input(f"{prefix}_ready", 1)
        self._elab.annotations.append(
            anno.DecoupledAnnotation(self.name, prefix, f"{prefix}_ready", f"{prefix}_valid", False)
        )
        return Decoupled(bits, valid, ready, prefix)

    # -- control flow ----------------------------------------------------------------

    def when(self, cond: Value) -> _WhenContext:
        """Open a conditional scope (``with m.when(cond): ...``)."""
        if cond.width != 1:
            raise HclError(f"when condition must be 1 bit wide, got {cond.width}")
        stmt = n.When(cond.expr, [], [], _caller_info())
        self._emit(stmt)
        return _WhenContext(self, stmt, stmt.conseq)

    def elsewhen(self, cond: Value) -> _WhenContext:
        """Chain a condition onto the immediately preceding when."""
        target = self._pending_when
        if target is None:
            raise HclError("elsewhen must immediately follow a when/elsewhen block")
        stmt = n.When(cond.expr, [], [], _caller_info())
        target.alt.append(stmt)
        return _WhenContext(self, stmt, stmt.conseq)

    def otherwise(self) -> _WhenContext:
        """Open the else branch of the immediately preceding when."""
        target = self._pending_when
        if target is None:
            raise HclError("otherwise must immediately follow a when/elsewhen block")
        return _WhenContext(self, target, target.alt)

    def switch(self, subject: Value) -> _SwitchContext:
        """Chisel-style switch; combine with ``m.is_(...)`` arms."""
        return _SwitchContext(self, subject)

    def is_(self, const: IntOrValue) -> _WhenContext:
        """One arm of the innermost active switch."""
        if not self._switch_stack:
            raise HclError("is_ used outside of a switch block")
        ctx = self._switch_stack[-1]
        cond = ctx._subject == const
        if ctx._first:
            ctx._first = False
            return self.when(cond)
        return self.elsewhen(cond)

    def default(self) -> _WhenContext:
        """The default arm of the innermost active switch."""
        if not self._switch_stack:
            raise HclError("default used outside of a switch block")
        return self.otherwise()

    # -- verification statements --------------------------------------------------------

    def cover(self, cond: Value, name: Optional[str] = None) -> str:
        """User-defined functional cover point; returns its unique name."""
        unique = self._ns.fresh(name or "cover")
        self._emit(n.Cover(unique, self.clock.expr, cond.expr, n.TRUE, _caller_info()))
        return unique

    def stop(self, cond: Value, exit_code: int = 0, name: Optional[str] = None) -> None:
        """Halt simulation when ``cond`` holds at a rising clock edge."""
        unique = self._ns.fresh(name or "stop")
        self._emit(n.Stop(unique, self.clock.expr, cond.expr, n.TRUE, exit_code, _caller_info()))

    # -- misc ------------------------------------------------------------------------------

    def mux(self, cond: Value, tval: IntOrValue, fval: IntOrValue) -> Value:
        return mux(cond, tval, fval)

    def lit(self, value: int, width: int) -> Value:
        return u(value, width)


class Module:
    """Base class for hardware generators.

    Subclasses implement ``build(self, m: ModuleBuilder)``.  Construction
    parameters become instance attributes in ``__init__`` before calling
    ``super().__init__()``.
    """

    #: Set to False for modules without a reset port.
    has_reset = True

    def __init__(self, name: Optional[str] = None) -> None:
        self._name = name

    @property
    def name(self) -> str:
        return self._name or type(self).__name__

    def signature(self) -> Optional[tuple]:
        """Structural identity for module deduplication.

        Two Module objects with equal non-None signatures elaborate to a
        single shared IR module.  The default (None) makes every object
        unique.
        """
        return None

    def build(self, m: ModuleBuilder) -> None:
        raise NotImplementedError


class Elaborator:
    """Builds Module objects into IR modules, sharing and uniquifying names."""

    def __init__(self) -> None:
        self.modules: list[n.Module] = []
        self.annotations: list[anno.Annotation] = []
        self._names = Namespace()
        self._by_signature: dict[tuple, n.Module] = {}
        self._in_progress: set[int] = set()

    def build(self, module: Module) -> n.Module:
        sig = module.signature()
        if sig is not None:
            key = (type(module).__qualname__,) + tuple(sig)
            cached = self._by_signature.get(key)
            if cached is not None:
                return cached
        if id(module) in self._in_progress:
            raise HclError(f"recursive instantiation of {module.name}")
        self._in_progress.add(id(module))
        try:
            name = self._names.fresh(sanitize(module.name))
            builder = ModuleBuilder(name, self, with_reset=module.has_reset)
            module.build(builder)
            ir_module = builder._module
            self.modules.append(ir_module)
            if sig is not None:
                self._by_signature[(type(module).__qualname__,) + tuple(sig)] = ir_module
            return ir_module
        finally:
            self._in_progress.discard(id(module))


def elaborate(top: Module) -> n.Circuit:
    """Elaborate a module hierarchy into an IR circuit."""
    with _get_obs().span("elaborate", cat="compile", top=top.name):
        elab = Elaborator()
        ir_top = elab.build(top)
        # children are appended before parents; put the top first for readability
        modules = [ir_top] + [m for m in elab.modules if m is not ir_top]
        return n.Circuit(ir_top.name, modules, list(elab.annotations))
